// Warm-start solves must be bit-identical to cold solves.
//
// The SolveSession layer promises that solve_incremental() over a
// persistent session returns exactly what solve() returns on the same
// instance — same feasibility, placements, cost/power accounting and
// frontier — while recomputing only the dirty subtrees.  These tests fuzz
// random delta sequences (request perturbations, pre-existing toggles,
// full clears, deliberate infeasible excursions) over random trees and
// compare every warm solve against a cold reference, for the three
// incremental engines (power-exact, power-sym, update-dp) at 1 and 4
// solver threads.  They are also the staleness net for the signature-diff
// invalidation in core/dp_cache.h.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "solver/registry.h"
#include "solver/session.h"
#include "support/check.h"
#include "support/prng.h"
#include "tests/support/test_math.h"
#include "tree/scenario_delta.h"

namespace treeplace {
namespace {

Tree make_fuzz_tree(std::uint64_t seed, std::uint64_t index,
                    int num_internal) {
  TreeGenConfig config;
  config.num_internal = num_internal;
  config.shape = TreeShape{2, 4};
  config.client_probability = 0.8;
  config.min_requests = 1;
  config.max_requests = 5;
  Tree tree = generate_tree(config, seed, index);
  Xoshiro256 pre_rng = make_rng(seed, index, RngStream::kPreExisting);
  assign_random_pre_existing(tree, num_internal / 4, pre_rng,
                             /*num_modes=*/2);
  return tree;
}

/// One random step: 1-4 deltas, occasionally an infeasible request volume
/// (far above every capacity) so the feasible -> infeasible -> feasible
/// transitions exercise the cache's invalidation bookkeeping.
std::vector<ScenarioDelta> random_step(const Topology& topo, Xoshiro256& rng) {
  std::vector<ScenarioDelta> deltas;
  const int edits = 1 + static_cast<int>(rng.uniform(0, 3));
  for (int e = 0; e < edits; ++e) {
    switch (rng.uniform(0, 11)) {
      case 0:
        deltas.push_back(ScenarioDelta::clear_all_pre());
        break;
      case 1:
      case 2: {
        const auto& ids = topo.internal_ids();
        deltas.push_back(ScenarioDelta::set_pre_existing(
            ids[rng.uniform(0, ids.size() - 1)],
            static_cast<int>(rng.uniform(0, 1))));
        break;
      }
      case 3: {
        const auto& ids = topo.internal_ids();
        deltas.push_back(ScenarioDelta::clear_pre_existing(
            ids[rng.uniform(0, ids.size() - 1)]));
        break;
      }
      case 4: {
        // Infeasible excursion: one client asks for more than W_M.
        const auto& ids = topo.client_ids();
        deltas.push_back(ScenarioDelta::set_requests(
            ids[rng.uniform(0, ids.size() - 1)], 50));
        break;
      }
      default: {
        const auto& ids = topo.client_ids();
        deltas.push_back(ScenarioDelta::set_requests(
            ids[rng.uniform(0, ids.size() - 1)], rng.uniform(0, 5)));
        break;
      }
    }
  }
  return deltas;
}

void expect_identical(const Solution& warm, const Solution& cold,
                      const std::string& context) {
  ASSERT_EQ(warm.feasible, cold.feasible) << context;
  EXPECT_EQ(warm.budget_met, cold.budget_met) << context;
  EXPECT_EQ(warm.placement, cold.placement) << context;
  if (!cold.feasible) return;
  EXPECT_DOUBLE_EQ(warm.breakdown.cost, cold.breakdown.cost) << context;
  EXPECT_DOUBLE_EQ(warm.power, cold.power) << context;
  EXPECT_EQ(warm.breakdown.servers, cold.breakdown.servers) << context;
  EXPECT_EQ(warm.breakdown.reused, cold.breakdown.reused) << context;
  ASSERT_EQ(warm.frontier.size(), cold.frontier.size()) << context;
  for (std::size_t i = 0; i < cold.frontier.size(); ++i) {
    EXPECT_DOUBLE_EQ(warm.frontier[i].cost, cold.frontier[i].cost) << context;
    EXPECT_DOUBLE_EQ(warm.frontier[i].power, cold.frontier[i].power)
        << context;
    EXPECT_EQ(warm.frontier[i].placement, cold.frontier[i].placement)
        << context;
  }
}

struct FuzzSetup {
  std::string algo;
  int num_internal = 24;
  bool single_mode = false;
};

void run_fuzz(const FuzzSetup& setup, int solver_threads) {
  const ModeSet modes = setup.single_mode
                            ? ModeSet::single(10)
                            : ModeSet({5, 10}, 12.5, 3.0);
  const CostModel costs =
      setup.single_mode
          ? CostModel::simple(0.1, 0.01)
          : CostModel::uniform(modes.count(), 0.1, 0.01, 0.001, 0.001);

  const auto warm_solver = make_solver(setup.algo);
  const auto cold_solver = make_solver(setup.algo);
  warm_solver->set_options(Solver::Options{solver_threads});
  cold_solver->set_options(Solver::Options{solver_threads});
  ASSERT_TRUE(warm_solver->supports_incremental());

  for (std::uint64_t index = 0; index < 2; ++index) {
    Tree tree = make_fuzz_tree(77, index, setup.num_internal);
    SolveSession session(tree.topology_ptr());
    Xoshiro256 rng = make_rng(77, index, RngStream::kWorkloadUpdate);
    for (int step = 0; step < 12; ++step) {
      const std::vector<ScenarioDelta> deltas =
          random_step(tree.topology(), rng);
      for (const ScenarioDelta& delta : deltas) {
        apply_delta(tree.scenario(), delta);
      }
      // Single-mode instances project original modes to 0, exactly as the
      // serving loop does (Instance::single_mode semantics).
      const Instance instance =
          setup.single_mode
              ? Instance::single_mode(tree.topology_ptr(), tree.scenario(),
                                      10, 0.1, 0.01)
              : Instance{tree.topology_ptr(), tree.scenario(), modes, costs,
                         std::nullopt};
      const Solution cold = cold_solver->solve(instance);
      const Solution warm =
          warm_solver->solve_incremental(instance, deltas, session);
      expect_identical(warm, cold,
                       setup.algo + " threads=" +
                           std::to_string(solver_threads) + " tree=" +
                           std::to_string(index) + " step=" +
                           std::to_string(step));
      // Warm never does more DP work than cold on the same instance.
      EXPECT_LE(warm.stats.work, cold.stats.work);
    }
    const SolveSession::Stats stats = session.stats();
    EXPECT_EQ(stats.warm_solves, 12u);
    EXPECT_EQ(stats.cold_solves, 0u);
    // Small delta steps must actually reuse subtrees, not just match.
    EXPECT_GT(stats.nodes_reused, 0u);
  }
}

TEST(IncrementalSolveTest, PowerSymWarmIdenticalToColdSerial) {
  run_fuzz({"power-sym", 24, false}, /*solver_threads=*/1);
}

TEST(IncrementalSolveTest, PowerSymWarmIdenticalToColdThreaded) {
  run_fuzz({"power-sym", 24, false}, /*solver_threads=*/4);
}

TEST(IncrementalSolveTest, PowerExactWarmIdenticalToColdSerial) {
  run_fuzz({"power-exact", 12, false}, /*solver_threads=*/1);
}

TEST(IncrementalSolveTest, PowerExactWarmIdenticalToColdThreaded) {
  run_fuzz({"power-exact", 12, false}, /*solver_threads=*/4);
}

TEST(IncrementalSolveTest, UpdateDpWarmIdenticalToColdSerial) {
  run_fuzz({"update-dp", 24, true}, /*solver_threads=*/1);
}

TEST(IncrementalSolveTest, UpdateDpWarmIdenticalToColdThreaded) {
  run_fuzz({"update-dp", 24, true}, /*solver_threads=*/4);
}

TEST(IncrementalSolveTest, SingleClientDeltaRecomputesOnlyTheRootPath) {
  Tree tree = make_fuzz_tree(78, 0, 24);
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const auto solver = make_solver("power-sym");
  SolveSession session(tree.topology_ptr());

  const Instance base{tree.topology_ptr(), tree.scenario(), modes, costs,
                      std::nullopt};
  solver->solve_incremental(base, {}, session);
  const SolveSession::Stats after_cold = session.stats();
  EXPECT_EQ(after_cold.nodes_recomputed, tree.num_internal());
  EXPECT_EQ(after_cold.nodes_reused, 0u);

  // Touch one client: only its parent's root path may be recomputed.
  const NodeId client = tree.client_ids().front();
  const std::vector<ScenarioDelta> deltas{
      ScenarioDelta::set_requests(client, tree.requests(client) + 1)};
  apply_delta(tree.scenario(), deltas.front());
  const Instance edited{tree.topology_ptr(), tree.scenario(), modes, costs,
                        std::nullopt};
  solver->solve_incremental(edited, deltas, session);
  const SolveSession::Stats after_warm = session.stats();

  std::size_t path_len = 0;
  for (NodeId j = tree.parent(client); j != kNoNode; j = tree.parent(j)) {
    ++path_len;
  }
  EXPECT_EQ(after_warm.nodes_recomputed - after_cold.nodes_recomputed,
            path_len);
  EXPECT_EQ(after_warm.nodes_reused, tree.num_internal() - path_len);
}

/// A wide star: one root whose internal children each carry one client.
/// The shape where the balanced merge tree pays off most — the old
/// left-deep chain redid up to k merges per delta, the tree O(log k).
Tree make_star_tree(int fanout) {
  TreeBuilder builder;
  const NodeId root = builder.add_root();
  for (int i = 0; i < fanout; ++i) {
    const NodeId child = builder.add_internal(root);
    builder.add_client(child, /*requests=*/1 + (i % 4));
  }
  return std::move(builder).build();
}

TEST(IncrementalSolveTest, StarDeltaRedoesLogKMergeSteps) {
  constexpr int kFanout = 48;
  for (const char* algo : {"power-sym", "power-exact", "update-dp"}) {
    Tree tree = make_star_tree(kFanout);
    const bool single_mode = std::string(algo) == "update-dp";
    const ModeSet modes = single_mode ? ModeSet::single(10)
                                      : ModeSet({5, 10}, 12.5, 3.0);
    const CostModel costs =
        single_mode ? CostModel::simple(0.1, 0.01)
                    : CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
    const auto solver = make_solver(algo);
    SolveSession session(tree.topology_ptr());

    const auto instance = [&] {
      return single_mode
                 ? Instance::single_mode(tree.topology_ptr(), tree.scenario(),
                                         10, 0.1, 0.01)
                 : Instance{tree.topology_ptr(), tree.scenario(), modes,
                            costs, std::nullopt};
    };
    solver->solve_incremental(instance(), {}, session);
    const SolveSession::Stats cold = session.stats();
    // Cold: every slot of the root's merge tree plus nothing per leaf
    // child (they have no internal children of their own).
    EXPECT_EQ(cold.merge_steps, 2u * kFanout - 1) << algo;

    // One client under one arm: the arm refolds its base (0 slots), the
    // root redoes that arm's leaf + its ceil(log2 k) root path.
    const NodeId client = tree.client_ids()[kFanout / 2];
    const std::vector<ScenarioDelta> deltas{
        ScenarioDelta::set_requests(client, tree.requests(client) + 1)};
    apply_delta(tree.scenario(), deltas.front());
    solver->solve_incremental(instance(), deltas, session);
    const SolveSession::Stats warm = session.stats();

    const std::uint64_t redo = warm.merge_steps - cold.merge_steps;
    EXPECT_LE(redo, static_cast<std::uint64_t>(test::ceil_log2(kFanout) + 1))
        << algo << ": a single-arm delta must redo O(log k) merge slots";
    EXPECT_GE(redo, 1u) << algo;
    EXPECT_EQ(warm.nodes_recomputed - cold.nodes_recomputed, 2u) << algo;
    EXPECT_EQ(warm.nodes_reused, static_cast<std::uint64_t>(kFanout - 1))
        << algo;
  }
}

TEST(IncrementalSolveTest, WarmSolveSplicesCellsThroughLazyJoins) {
  // One dirty arm of a wide star: the root's re-joined slots see one
  // changed operand with a small value diff, so the lazy kernel path must
  // splice (not recompute) the cells outside the delta's footprint —
  // while staying bit-identical to a cold solve.
  constexpr int kFanout = 48;
  for (const char* algo : {"power-sym", "power-exact", "update-dp"}) {
    Tree tree = make_star_tree(kFanout);
    const bool single_mode = std::string(algo) == "update-dp";
    const ModeSet modes =
        single_mode ? ModeSet::single(10) : ModeSet({5, 10}, 12.5, 3.0);
    const CostModel costs =
        single_mode ? CostModel::simple(0.1, 0.01)
                    : CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
    const auto warm_solver = make_solver(algo);
    const auto cold_solver = make_solver(algo);
    SolveSession session(tree.topology_ptr());

    const auto instance = [&] {
      return single_mode
                 ? Instance::single_mode(tree.topology_ptr(), tree.scenario(),
                                         10, 0.1, 0.01)
                 : Instance{tree.topology_ptr(), tree.scenario(), modes,
                            costs, std::nullopt};
    };
    warm_solver->solve_incremental(instance(), {}, session);
    // A cold solve has no snapshots to splice from.
    EXPECT_EQ(session.stats().cells_skipped, 0u) << algo;

    const NodeId client = tree.client_ids()[kFanout / 3];
    const std::vector<ScenarioDelta> deltas{
        ScenarioDelta::set_requests(client, tree.requests(client) + 1)};
    apply_delta(tree.scenario(), deltas.front());
    const Solution warm =
        warm_solver->solve_incremental(instance(), deltas, session);
    expect_identical(warm, cold_solver->solve(instance()),
                     std::string(algo) + " lazy warm");
    EXPECT_GT(session.stats().cells_skipped, 0u)
        << algo << ": a one-arm delta must splice root-join cells";
  }
}

TEST(IncrementalSolveTest, BurstDeltaBatchKeepsTheLazyJoinPath) {
  // A burst: several clients across different arms change in one step, so
  // the root's merge tree sees joins where BOTH operands moved.  The
  // two-sided lazy kernel must still splice cells (not bail to full
  // rebuilds) while staying bit-identical to a cold solve.
  constexpr int kFanout = 48;
  for (const char* algo : {"power-sym", "power-exact", "update-dp"}) {
    Tree tree = make_star_tree(kFanout);
    const bool single_mode = std::string(algo) == "update-dp";
    const ModeSet modes =
        single_mode ? ModeSet::single(10) : ModeSet({5, 10}, 12.5, 3.0);
    const CostModel costs =
        single_mode ? CostModel::simple(0.1, 0.01)
                    : CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
    const auto warm_solver = make_solver(algo);
    const auto cold_solver = make_solver(algo);
    SolveSession session(tree.topology_ptr());

    const auto instance = [&] {
      return single_mode
                 ? Instance::single_mode(tree.topology_ptr(), tree.scenario(),
                                         10, 0.1, 0.01)
                 : Instance{tree.topology_ptr(), tree.scenario(), modes,
                            costs, std::nullopt};
    };
    warm_solver->solve_incremental(instance(), {}, session);

    Xoshiro256 rng(0x6b75u * static_cast<std::uint64_t>(algo[0]));
    std::uint64_t spliced_steps = 0;
    for (int step = 0; step < 4; ++step) {
      // 4-6 clients per burst, spread over distinct arms.
      const int burst = 4 + static_cast<int>(rng.uniform(0, 2));
      std::vector<ScenarioDelta> deltas;
      for (int b = 0; b < burst; ++b) {
        const NodeId client =
            tree.client_ids()[(b * (kFanout / burst) + step) % kFanout];
        deltas.push_back(ScenarioDelta::set_requests(
            client, 1 + (tree.requests(client) + step) % 5));
        apply_delta(tree.scenario(), deltas.back());
      }
      const std::uint64_t before = session.stats().cells_skipped;
      const Solution warm =
          warm_solver->solve_incremental(instance(), deltas, session);
      expect_identical(warm, cold_solver->solve(instance()),
                       std::string(algo) + " burst step " +
                           std::to_string(step));
      if (session.stats().cells_skipped > before) ++spliced_steps;
    }
    EXPECT_GE(spliced_steps, 3u)
        << algo << ": burst deltas must keep splicing through lazy joins "
        << "instead of bailing to full rebuilds";
  }
}

TEST(IncrementalSolveTest, ByteBudgetShedsColdestSubtreesFirst) {
  // Repeatedly dirty one arm of a star: its root path becomes hot, every
  // other arm stays at zero invalidations.  Budget shedding must evict the
  // cold arms and keep the hot path resident.
  constexpr int kFanout = 16;
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const auto solver = make_solver("power-sym");

  const auto run_steps = [&](Tree& tree, SolveSession& session) {
    const NodeId hot_client = tree.client_ids()[kFanout / 2];
    const Instance base{tree.topology_ptr(), tree.scenario(), modes, costs,
                        std::nullopt};
    solver->solve_incremental(base, {}, session);
    for (int step = 0; step < 4; ++step) {
      const std::vector<ScenarioDelta> deltas{ScenarioDelta::set_requests(
          hot_client, tree.requests(hot_client) + 1)};
      apply_delta(tree.scenario(), deltas.front());
      const Instance edited{tree.topology_ptr(), tree.scenario(), modes,
                            costs, std::nullopt};
      solver->solve_incremental(edited, deltas, session);
    }
    return hot_client;
  };

  // Dry run on an unbounded session to size a budget that forces state
  // shedding (the root's merge snapshots alone must not satisfy it).
  Tree sizing = make_star_tree(kFanout);
  SolveSession unbounded(sizing.topology_ptr());
  run_steps(sizing, unbounded);
  auto& sized = unbounded.power_cache("power-sym");
  const Topology& topo = sizing.topology();
  const std::size_t root_idx = topo.internal_index(sizing.root());
  std::size_t total = 0;
  std::size_t cold_arms = 0;
  for (std::size_t i = 0; i < sized.size(); ++i) {
    total += sized.state_bytes(i);
    // Untouched arms carry only the cold-attach invalidation.
    if (i != root_idx && sized.dirty_count(i) <= 1) {
      cold_arms += sized.state_bytes(i);
    }
  }
  ASSERT_GT(cold_arms, 0u);
  const std::size_t budget = (total - sized.snapshot_bytes(root_idx)) -
                             cold_arms / 2;

  Tree tree = make_star_tree(kFanout);
  SolveSession session(tree.topology_ptr(),
                       SolveSession::Options{/*max_bytes=*/budget});
  const NodeId hot_client = run_steps(tree, session);
  const std::size_t hot_arm =
      tree.topology().internal_index(tree.parent(hot_client));

  const SolveSession::Stats stats = session.stats();
  EXPECT_GT(stats.tables_dropped, 0u);
  auto& cache = session.power_cache("power-sym");
  // The hot path (dirtied every step) survives; only cold arms are shed.
  EXPECT_TRUE(cache.valid(hot_arm));
  EXPECT_TRUE(cache.valid(tree.topology().internal_index(tree.root())));
  std::size_t shed_cold = 0;
  for (std::size_t i = 0; i < cache.size(); ++i) {
    if (!cache.valid(i)) {
      EXPECT_LT(cache.dirty_count(i), cache.dirty_count(hot_arm))
          << "shed node " << i << " was not colder than the hot path";
      ++shed_cold;
    }
  }
  EXPECT_GT(shed_cold, 0u);
}

TEST(IncrementalSolveTest, SmallDeltaSkipsTheSignatureSweep) {
  Tree tree = make_star_tree(48);
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const auto warm_solver = make_solver("power-sym");
  const auto cold_solver = make_solver("power-sym");
  SolveSession session(tree.topology_ptr());

  const Instance base{tree.topology_ptr(), tree.scenario(), modes, costs,
                      std::nullopt};
  warm_solver->solve_incremental(base, {}, session);
  const std::uint64_t n = tree.num_internal();
  // A cold attach has nothing to diff against: zero checks.
  EXPECT_EQ(session.stats().signatures_checked, 0u);

  const auto step = [&](NodeId client) {
    const std::vector<ScenarioDelta> deltas{
        ScenarioDelta::set_requests(client, tree.requests(client) + 3)};
    apply_delta(tree.scenario(), deltas.front());
    const Instance edited{tree.topology_ptr(), tree.scenario(), modes, costs,
                          std::nullopt};
    const Solution warm = warm_solver->solve_incremental(edited, deltas,
                                                         session);
    expect_identical(warm, cold_solver->solve(edited), "delta step");
  };

  // The first span after an unknown predecessor still sweeps (it primes
  // the touched-set tracking)...
  step(tree.client_ids()[0]);
  EXPECT_EQ(session.stats().signatures_checked, n);

  // ...then consecutive complete spans take the fast path: only the
  // current span's touched nodes union the previous span's are checked.
  step(tree.client_ids()[1]);
  const std::uint64_t after_fast = session.stats().signatures_checked;
  EXPECT_LE(after_fast, n + 2);

  // An unattributable span (clear-all) falls back to the full sweep.
  const std::vector<ScenarioDelta> clear{ScenarioDelta::clear_all_pre()};
  apply_delta(tree.scenario(), clear.front());
  const Instance cleared{tree.topology_ptr(), tree.scenario(), modes, costs,
                         std::nullopt};
  const Solution warm2 = warm_solver->solve_incremental(cleared, clear,
                                                        session);
  EXPECT_EQ(session.stats().signatures_checked, after_fast + n);
  expect_identical(warm2, cold_solver->solve(cleared), "sweep fallback");
}

TEST(IncrementalSolveTest, ByteBudgetShedsStateButKeepsResults) {
  Tree tree = make_fuzz_tree(81, 0, 24);
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const auto warm_solver = make_solver("power-sym");
  const auto cold_solver = make_solver("power-sym");

  // A budget small enough to force shedding but nonzero, so the session
  // keeps the cheapest tables: results must stay bit-identical, only the
  // reuse counters may degrade.
  SolveSession session(tree.topology_ptr(),
                       SolveSession::Options{/*max_bytes=*/8 * 1024});
  Xoshiro256 rng = make_rng(81, 0, RngStream::kWorkloadUpdate);
  for (int step = 0; step < 6; ++step) {
    const std::vector<ScenarioDelta> deltas = random_step(tree.topology(),
                                                          rng);
    for (const ScenarioDelta& delta : deltas) {
      apply_delta(tree.scenario(), delta);
    }
    const Instance instance{tree.topology_ptr(), tree.scenario(), modes,
                            costs, std::nullopt};
    const Solution warm =
        warm_solver->solve_incremental(instance, deltas, session);
    expect_identical(warm, cold_solver->solve(instance),
                     "budget step " + std::to_string(step));
  }
  const SolveSession::Stats stats = session.stats();
  EXPECT_LE(stats.bytes_resident, 8u * 1024u);
  EXPECT_GT(stats.snapshots_dropped + stats.tables_dropped, 0u);

  // An unbounded session never sheds (and skips the accounting walk:
  // bytes_resident stays untracked at 0).
  SolveSession unbounded(tree.topology_ptr());
  warm_solver->solve_incremental(
      Instance{tree.topology_ptr(), tree.scenario(), modes, costs,
               std::nullopt},
      {}, unbounded);
  EXPECT_EQ(unbounded.stats().snapshots_dropped, 0u);
  EXPECT_EQ(unbounded.stats().tables_dropped, 0u);
  EXPECT_EQ(unbounded.stats().bytes_resident, 0u);
}

TEST(IncrementalSolveTest, RejectsInstanceOfDifferentTopology) {
  Tree a = make_fuzz_tree(80, 0, 12);
  Tree b = make_fuzz_tree(80, 1, 12);
  const auto solver = make_solver("power-sym");
  SolveSession session(a.topology_ptr());
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const Instance other{b.topology_ptr(), b.scenario(), modes, costs,
                       std::nullopt};
  EXPECT_THROW(solver->solve_incremental(other, {}, session), CheckError);
}

TEST(IncrementalSolveTest, NonIncrementalSolverFallsBackCold) {
  Tree tree = make_fuzz_tree(79, 0, 16);
  const auto solver = make_solver("greedy");
  EXPECT_FALSE(solver->supports_incremental());
  SolveSession session(tree.topology_ptr());
  const Instance instance =
      Instance::single_mode(tree.topology_ptr(), tree.scenario(), 10, 0.1,
                            0.01);
  const Solution warm = solver->solve_incremental(instance, {}, session);
  const Solution cold = solver->solve(instance);
  expect_identical(warm, cold, "greedy fallback");
  EXPECT_EQ(session.stats().cold_solves, 1u);
  EXPECT_EQ(session.stats().warm_solves, 0u);
}

}  // namespace
}  // namespace treeplace
