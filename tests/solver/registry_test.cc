// The solver layer's contract, enforced for every registered strategy:
// solutions validate under the independent evaluator, reported accounting
// matches re-derived accounting, exact solvers match the exhaustive
// oracles, and heuristics never beat them.  Because the suite is
// parameterized over SolverRegistry::instance().names(), a newly registered
// solver is held to the same contract with zero new test code.
#include "solver/registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/exhaustive.h"
#include "model/placement.h"
#include "support/check.h"
#include "tests/core/test_instances.h"

namespace treeplace {
namespace {

using testing::make_fig1;
using testing::make_fig2;
using testing::make_random_small;

// --- The documented one-file registration recipe, exercised for real ------

/// A trivial strategy registered through the public macro: one server at
/// every internal node (always valid on feasible instances, never optimal).
class EveryNodeSolver : public Solver {
 public:
  EveryNodeSolver() : Solver(make_info()) {}
  static SolverInfo make_info() {
    SolverInfo info;
    info.name = "test-every-node";
    info.summary = "test-only: a replica on every internal node";
    info.objective = Objective::kMinCost;
    return info;
  }
  Solution solve(const Instance& in) const override {
    Placement placement;
    for (NodeId id : in.topo().internal_ids()) placement.add(id, 0);
    Solution s;
    // With a replica everywhere each server's load is its own client mass,
    // so the placement is infeasible exactly when some client group
    // exceeds W_M — which is global infeasibility.
    const FlowResult flows = compute_flows(in.topo(), in.scen(), placement);
    for (NodeId id : placement.nodes()) {
      if (flows.load(in.topo(), id) > in.modes.max_capacity()) return s;
    }
    minimize_modes(in.topo(), in.scen(), placement, in.modes);
    s.feasible = true;
    s.placement = std::move(placement);
    s.breakdown = evaluate_cost(in.topo(), in.scen(), s.placement, in.costs);
    s.power = total_power(s.placement, in.modes);
    s.budget_met =
        !in.cost_budget || s.breakdown.cost <= *in.cost_budget + 1e-9;
    return s;
  }
};

TREEPLACE_REGISTER_SOLVER(EveryNodeSolver);

// --- Shared instance set ---------------------------------------------------

struct NamedInstance {
  std::string label;
  Instance instance;
};

std::vector<NamedInstance> shared_instances() {
  std::vector<NamedInstance> out;

  // Paper Figure 1 (single mode, W = 10, a pre-existing server at B).
  for (RequestCount root_requests : {RequestCount{2}, RequestCount{4}}) {
    auto f = make_fig1(root_requests);
    out.push_back(NamedInstance{
        "fig1/r" + std::to_string(root_requests),
        Instance::single_mode(std::move(f.tree), 10, 0.1, 0.01)});
  }

  // Paper Figure 2 (modes W1=7, W2=10, power 10 + W²), no pre-existing.
  {
    auto f = make_fig2(2);
    out.push_back(NamedInstance{
        "fig2/r2",
        Instance{std::move(f.tree), ModeSet({7, 10}, 10.0, 2.0),
                 CostModel::uniform(2, 0.1, 0.01, 0.001), std::nullopt}});
  }

  // Random small trees: a single-mode family and a two-mode family, both
  // with pre-existing servers.
  for (std::uint64_t i = 0; i < 4; ++i) {
    Tree tree = make_random_small(/*seed=*/501, i, /*n=*/6, /*min_req=*/1,
                                  /*max_req=*/6, /*num_pre=*/2,
                                  /*num_modes=*/1);
    out.push_back(NamedInstance{"rand1m/" + std::to_string(i),
                                Instance::single_mode(std::move(tree), 10,
                                                      0.1, 0.01)});
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    Tree tree = make_random_small(/*seed=*/502, i, /*n=*/5, /*min_req=*/1,
                                  /*max_req=*/5, /*num_pre=*/2,
                                  /*num_modes=*/2);
    out.push_back(NamedInstance{
        "rand2m/" + std::to_string(i),
        Instance{std::move(tree), ModeSet({5, 10}, 12.5, 3.0),
                 CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001),
                 std::nullopt}});
  }
  return out;
}

/// An instance no placement can serve: one client louder than W_M.
Instance infeasible_instance() {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  builder.add_client(r, 11);
  return Instance::single_mode(std::move(builder).build(), 10, 0.1, 0.01);
}

// --- Registry API ----------------------------------------------------------

TEST(SolverRegistryTest, EnumeratesAtLeastSixSolversSorted) {
  const auto names = SolverRegistry::instance().names();
  EXPECT_GE(names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  for (const char* expected :
       {"greedy", "greedy-pre", "update-dp", "power-sym", "power-exact",
        "power-greedy", "exhaustive-cost", "exhaustive-power"}) {
    EXPECT_TRUE(SolverRegistry::instance().contains(expected)) << expected;
  }
}

TEST(SolverRegistryTest, MacroRegistrationWorks) {
  // EveryNodeSolver above was registered purely through
  // TREEPLACE_REGISTER_SOLVER — the documented extension recipe.
  const SolverInfo* info =
      SolverRegistry::instance().find("test-every-node");
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->exact);
  const auto solver = make_solver("test-every-node");
  EXPECT_EQ(solver->name(), "test-every-node");
}

TEST(SolverRegistryTest, UnknownNameThrowsListingCatalog) {
  try {
    SolverRegistry::instance().create("no-such-algo");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-algo"), std::string::npos);
    EXPECT_NE(what.find("update-dp"), std::string::npos) << what;
  }
  EXPECT_EQ(SolverRegistry::instance().find("no-such-algo"), nullptr);
  EXPECT_FALSE(SolverRegistry::instance().contains("no-such-algo"));
}

TEST(SolverRegistryTest, DuplicateRegistrationRejected) {
  SolverInfo info = EveryNodeSolver::make_info();  // name already taken
  EXPECT_THROW(SolverRegistry::instance().add(
                   info, [] { return std::make_unique<EveryNodeSolver>(); }),
               CheckError);
}

TEST(SolverRegistryTest, InfosMatchNames) {
  const auto names = SolverRegistry::instance().names();
  const auto infos = SolverRegistry::instance().infos();
  ASSERT_EQ(names.size(), infos.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(infos[i].name, names[i]);
    EXPECT_FALSE(infos[i].summary.empty()) << names[i];
  }
}

// --- Per-solver contract ---------------------------------------------------

class RegisteredSolverTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RegisteredSolverTest, SolvesSharedInstancesConsistently) {
  const auto solver = make_solver(GetParam());
  const SolverInfo& info = solver->info();

  for (const NamedInstance& named : shared_instances()) {
    const Instance& instance = named.instance;
    if (!info.accepts(instance.num_internal(),
                      instance.modes.count())) {
      continue;
    }
    SCOPED_TRACE(named.label);
    const Solution solution = solver->solve(instance);
    EXPECT_TRUE(solution.feasible);  // every shared instance is feasible
    if (!solution.feasible) continue;

    if (info.provides_placement) {
      const ValidationResult v = validate(instance.topo(), instance.scen(),
                                          solution.placement, instance.modes);
      EXPECT_TRUE(v.valid) << v.reason;

      // Reported accounting must match the independent evaluator.
      const CostBreakdown expected =
          evaluate_cost(instance.topo(), instance.scen(), solution.placement,
                        instance.costs);
      EXPECT_NEAR(solution.breakdown.cost, expected.cost, 1e-9);
      EXPECT_EQ(solution.breakdown.servers, expected.servers);
      EXPECT_EQ(solution.breakdown.reused, expected.reused);
      EXPECT_EQ(solution.breakdown.deleted, expected.deleted);
      EXPECT_NEAR(solution.power,
                  total_power(solution.placement, instance.modes), 1e-9);
    }

    // Every frontier is sorted by ascending cost, strictly descending
    // power.
    for (std::size_t i = 1; i < solution.frontier.size(); ++i) {
      EXPECT_GT(solution.frontier[i].cost, solution.frontier[i - 1].cost);
      EXPECT_LT(solution.frontier[i].power, solution.frontier[i - 1].power);
    }

    // Solvers are deterministic strategies.
    const Solution again = solver->solve(instance);
    EXPECT_EQ(solution.placement, again.placement);
    EXPECT_NEAR(solution.breakdown.cost, again.breakdown.cost, 0.0);
  }
}

TEST_P(RegisteredSolverTest, AgreesWithExhaustiveOracles) {
  const auto solver = make_solver(GetParam());
  const SolverInfo& info = solver->info();

  for (const NamedInstance& named : shared_instances()) {
    const Instance& instance = named.instance;
    if (!info.accepts(instance.num_internal(),
                      instance.modes.count())) {
      continue;
    }
    SCOPED_TRACE(named.label);
    const Solution solution = solver->solve(instance);
    ASSERT_TRUE(solution.feasible);

    if (instance.costs.num_modes() == 1) {
      // Cost side: nobody beats the oracle; exact min-cost solvers tie it.
      const auto oracle =
          exhaustive_min_cost(instance.topo(), instance.scen(),
                              instance.modes.max_capacity(), instance.costs);
      ASSERT_TRUE(oracle.has_value());
      if (info.provides_placement) {
        EXPECT_GE(solution.breakdown.cost, oracle->breakdown.cost - 1e-9);
      }
      if (info.exact && info.objective == Objective::kMinCost) {
        EXPECT_NEAR(solution.breakdown.cost, oracle->breakdown.cost, 1e-9);
      }
    }

    if (info.objective == Objective::kMinPower) {
      const auto oracle_power = exhaustive_min_power(
          instance.topo(), instance.scen(), instance.modes);
      ASSERT_TRUE(oracle_power.has_value());
      EXPECT_GE(solution.power, *oracle_power - 1e-9);
      if (info.exact) {
        const PowerParetoPoint* best = solution.min_power();
        ASSERT_NE(best, nullptr);
        EXPECT_NEAR(best->power, *oracle_power, 1e-9);
        // Exact bi-criteria solvers reproduce the oracle frontier exactly.
        const auto oracle_frontier = exhaustive_cost_power_frontier(
            instance.topo(), instance.scen(), instance.modes, instance.costs);
        ASSERT_EQ(solution.frontier.size(), oracle_frontier.size());
        for (std::size_t i = 0; i < oracle_frontier.size(); ++i) {
          EXPECT_NEAR(solution.frontier[i].cost, oracle_frontier[i].cost,
                      1e-9);
          EXPECT_NEAR(solution.frontier[i].power, oracle_frontier[i].power,
                      1e-9);
        }
      }
    }
  }
}

TEST_P(RegisteredSolverTest, ReportsInfeasibleInstances) {
  const auto solver = make_solver(GetParam());
  const Instance instance = infeasible_instance();
  if (!solver->info().accepts(instance.num_internal(),
                              instance.modes.count())) {
    GTEST_SKIP() << "solver does not accept the instance";
  }
  const Solution solution = solver->solve(instance);
  EXPECT_FALSE(solution.feasible);
  EXPECT_TRUE(solution.placement.empty());
  EXPECT_TRUE(solution.frontier.empty());
}

TEST_P(RegisteredSolverTest, HonorsCostBudget) {
  const auto solver = make_solver(GetParam());
  const SolverInfo& info = solver->info();
  if (info.objective != Objective::kMinPower) {
    GTEST_SKIP() << "budget queries target min-power solvers";
  }
  Tree tree = make_random_small(/*seed=*/503, 0, /*n=*/5, 1, 5,
                                /*num_pre=*/1, /*num_modes=*/2);
  Instance instance{std::move(tree), ModeSet({5, 10}, 12.5, 3.0),
                    CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001),
                    std::nullopt};
  // A generous budget binds nothing.
  instance.cost_budget = 1e9;
  const Solution generous = solver->solve(instance);
  ASSERT_TRUE(generous.feasible);
  EXPECT_TRUE(generous.budget_met);

  // For bi-criteria solvers, a budget equal to the cheapest frontier point
  // must select exactly that point.
  if (!generous.frontier.empty()) {
    const PowerParetoPoint& cheapest = generous.frontier.front();
    instance.cost_budget = cheapest.cost;
    const Solution bounded = solver->solve(instance);
    ASSERT_TRUE(bounded.feasible);
    EXPECT_TRUE(bounded.budget_met);
    EXPECT_NEAR(bounded.breakdown.cost, cheapest.cost, 1e-9);
    EXPECT_NEAR(bounded.power, cheapest.power, 1e-9);
  }

  // An impossible budget is reported, not silently ignored (every server
  // costs at least 1, so 1e-3 admits nothing).
  instance.cost_budget = 1e-3;
  const Solution impossible = solver->solve(instance);
  if (impossible.feasible) EXPECT_FALSE(impossible.budget_met);
}

// --- The exhaustive-power oracle's reconstructed placements ---------------

TEST(ExhaustivePowerPlacementTest, FrontierPointsCarryValidWitnesses) {
  // The oracle used to be value-only (provides_placement == false); it now
  // reconstructs a witness placement per frontier point and is held to the
  // full placement contract above like every other solver.
  const SolverInfo* info = SolverRegistry::instance().find("exhaustive-power");
  ASSERT_NE(info, nullptr);
  EXPECT_TRUE(info->provides_placement);

  const auto solver = make_solver("exhaustive-power");
  for (const NamedInstance& named : shared_instances()) {
    const Instance& instance = named.instance;
    if (!info->accepts(instance.num_internal(), instance.modes.count())) {
      continue;
    }
    SCOPED_TRACE(named.label);
    const Solution solution = solver->solve(instance);
    ASSERT_TRUE(solution.feasible);
    ASSERT_FALSE(solution.frontier.empty());
    for (const PowerParetoPoint& point : solution.frontier) {
      // Every frontier point's witness validates and re-derives to exactly
      // the certified (cost, power) pair.
      const ValidationResult v = validate(instance.topo(), instance.scen(),
                                          point.placement, instance.modes);
      EXPECT_TRUE(v.valid) << v.reason;
      EXPECT_NEAR(evaluate_cost(instance.topo(), instance.scen(),
                                point.placement, instance.costs)
                      .cost,
                  point.cost, 1e-9);
      EXPECT_NEAR(total_power(point.placement, instance.modes), point.power,
                  1e-9);
    }
    // The selected placement is the min-power frontier point's witness.
    EXPECT_EQ(solution.placement, solution.min_power()->placement);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegistered, RegisteredSolverTest,
    ::testing::ValuesIn(SolverRegistry::instance().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace treeplace
