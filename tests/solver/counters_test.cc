// 64-bit work/byte counter audit for the 10^5-10^6-node regime.
//
// A simulated day at million-user scale pushes per-session work counters
// (merge pairs, spliced cells, summed SolveStats::work) past 2^32 — the
// static_asserts below pin every accounting field that accumulates across
// solves to a fixed 64-bit type, and the runtime test drives the session
// accumulators past the 32-bit boundary, which would wrap (and fail) if
// any of them were narrowed.
#include <gtest/gtest.h>

#include <cstdint>
#include <type_traits>

#include "core/dp_update.h"
#include "core/power_common.h"
#include "gen/tree_gen.h"
#include "serve/connection.h"
#include "serve/dispatcher.h"
#include "serve/net_server.h"
#include "serve/stream_server.h"
#include "serve/topology_cache.h"
#include "solver/session.h"
#include "solver/solution.h"

namespace treeplace {
namespace {

// --- Compile-time audit: every cross-solve accumulator is exactly u64.
#define TREEPLACE_ASSERT_U64(expr) \
  static_assert(std::is_same_v<decltype(expr), std::uint64_t>)

TREEPLACE_ASSERT_U64(PowerSolveStats::merge_pairs);
TREEPLACE_ASSERT_U64(PowerSolveStats::table_cells);
TREEPLACE_ASSERT_U64(PowerSolveStats::merge_steps);
TREEPLACE_ASSERT_U64(PowerSolveStats::nodes_recomputed);
TREEPLACE_ASSERT_U64(PowerSolveStats::nodes_reused);
TREEPLACE_ASSERT_U64(PowerSolveStats::signatures_checked);
TREEPLACE_ASSERT_U64(MinCostResult::merge_iterations);
TREEPLACE_ASSERT_U64(SolveStats::work);
TREEPLACE_ASSERT_U64(SolveSession::Stats::warm_solves);
TREEPLACE_ASSERT_U64(SolveSession::Stats::cold_solves);
TREEPLACE_ASSERT_U64(SolveSession::Stats::nodes_recomputed);
TREEPLACE_ASSERT_U64(SolveSession::Stats::nodes_reused);
TREEPLACE_ASSERT_U64(SolveSession::Stats::merge_steps);
TREEPLACE_ASSERT_U64(SolveSession::Stats::signatures_checked);
TREEPLACE_ASSERT_U64(SolveSession::Stats::cells_skipped);
TREEPLACE_ASSERT_U64(SolveSession::Stats::bytes_resident);
TREEPLACE_ASSERT_U64(SolveSession::Stats::snapshots_dropped);
TREEPLACE_ASSERT_U64(SolveSession::Stats::tables_dropped);
TREEPLACE_ASSERT_U64(SolveSession::Stats::subtrees_sealed);
TREEPLACE_ASSERT_U64(SolveSession::Stats::sealed_cells_injected);
TREEPLACE_ASSERT_U64(serve::ConnectionStats::bytes_in);
TREEPLACE_ASSERT_U64(serve::ConnectionStats::bytes_out);
TREEPLACE_ASSERT_U64(serve::ConnectionStats::requests);
TREEPLACE_ASSERT_U64(serve::ConnectionStats::results);
TREEPLACE_ASSERT_U64(serve::SolverLatencyStats::solves);
TREEPLACE_ASSERT_U64(serve::SolverLatencyStats::warm);
TREEPLACE_ASSERT_U64(serve::SolverLatencyStats::total_work);
TREEPLACE_ASSERT_U64(serve::DispatcherStats::submitted);
TREEPLACE_ASSERT_U64(serve::DispatcherStats::completed);
TREEPLACE_ASSERT_U64(serve::NetServerSummary::accepted);
TREEPLACE_ASSERT_U64(serve::NetServerSummary::requests);
TREEPLACE_ASSERT_U64(serve::StreamServerSummary::requests);
TREEPLACE_ASSERT_U64(serve::StreamServerSummary::ok);
TREEPLACE_ASSERT_U64(serve::StreamServerSummary::infeasible);
TREEPLACE_ASSERT_U64(serve::StreamServerSummary::errors);
TREEPLACE_ASSERT_U64(serve::StreamServerSummary::over_budget);
TREEPLACE_ASSERT_U64(serve::TopologyCacheStats::hits);
TREEPLACE_ASSERT_U64(serve::TopologyCacheStats::session_bytes);
TREEPLACE_ASSERT_U64(serve::TopologyCacheStats::session_cells_skipped);
TREEPLACE_ASSERT_U64(serve::TopologyCacheStats::session_subtrees_sealed);
TREEPLACE_ASSERT_U64(serve::TopologyCacheStats::session_sealed_cells);

#undef TREEPLACE_ASSERT_U64

TEST(CounterAuditTest, SessionAccumulatorsSurviveThe32BitBoundary) {
  TreeGenConfig config;
  config.num_internal = 4;
  const Tree tree = generate_tree(config, 1, 0);
  SolveSession session(tree.topology_ptr());

  // Five recordings of ~2^31 each: every accumulator ends near 10^10 —
  // a value a u32 would have wrapped to ~1.6e9 less per wrap.
  const std::uint64_t step = (std::uint64_t{1} << 31) + 7;
  for (int i = 0; i < 5; ++i) {
    session.record_warm(step, step, step, step, step);
    session.record_contraction(step, step);
  }
  const SolveSession::Stats stats = session.stats();
  const std::uint64_t expected = 5 * step;
  EXPECT_GT(expected, std::uint64_t{1} << 32);
  EXPECT_EQ(stats.warm_solves, 5u);
  EXPECT_EQ(stats.nodes_recomputed, expected);
  EXPECT_EQ(stats.nodes_reused, expected);
  EXPECT_EQ(stats.merge_steps, expected);
  EXPECT_EQ(stats.signatures_checked, expected);
  EXPECT_EQ(stats.cells_skipped, expected);
  EXPECT_EQ(stats.subtrees_sealed, expected);
  EXPECT_EQ(stats.sealed_cells_injected, expected);
}

}  // namespace
}  // namespace treeplace
