// Session snapshots must restore warm state bit-identically.
//
// SolveSession::save/restore (core/dp_snapshot.h + support/binio.h)
// promise that a session written to bytes and restored — even into a
// session over a *separately built* identical topology, the process-
// restart case — plans exactly the warm solve the live session would
// have: same solutions, same work counters (nodes recomputed/reused,
// merge steps, signature checks, spliced cells), for all three
// incremental engines at 1 and 4 solver threads.  The rejection tests
// cover the other half of the contract: truncated, corrupted,
// wrong-version, wrong-magic and wrong-topology snapshots throw
// CheckError and leave the target session untouched (no partial
// restore), so a bad file degrades to a cold start, never to wrong
// results.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "solver/registry.h"
#include "solver/session.h"
#include "support/binio.h"
#include "support/check.h"
#include "support/prng.h"
#include "tree/scenario_delta.h"

namespace treeplace {
namespace {

Tree make_fuzz_tree(std::uint64_t seed, std::uint64_t index,
                    int num_internal) {
  TreeGenConfig config;
  config.num_internal = num_internal;
  config.shape = TreeShape{2, 4};
  config.client_probability = 0.8;
  config.min_requests = 1;
  config.max_requests = 5;
  Tree tree = generate_tree(config, seed, index);
  Xoshiro256 pre_rng = make_rng(seed, index, RngStream::kPreExisting);
  assign_random_pre_existing(tree, num_internal / 4, pre_rng,
                             /*num_modes=*/2);
  return tree;
}

/// One random attributable step (no clear-all: the fuzz exercises the
/// delta fast path, whose planning state must round-trip too).
std::vector<ScenarioDelta> random_step(const Topology& topo, Xoshiro256& rng) {
  std::vector<ScenarioDelta> deltas;
  const int edits = 1 + static_cast<int>(rng.uniform(0, 2));
  for (int e = 0; e < edits; ++e) {
    switch (rng.uniform(0, 7)) {
      case 0: {
        const auto& ids = topo.internal_ids();
        deltas.push_back(ScenarioDelta::set_pre_existing(
            ids[rng.uniform(0, ids.size() - 1)],
            static_cast<int>(rng.uniform(0, 1))));
        break;
      }
      case 1: {
        const auto& ids = topo.internal_ids();
        deltas.push_back(ScenarioDelta::clear_pre_existing(
            ids[rng.uniform(0, ids.size() - 1)]));
        break;
      }
      default: {
        const auto& ids = topo.client_ids();
        deltas.push_back(ScenarioDelta::set_requests(
            ids[rng.uniform(0, ids.size() - 1)], rng.uniform(0, 5)));
        break;
      }
    }
  }
  return deltas;
}

void expect_identical(const Solution& got, const Solution& want,
                      const std::string& context) {
  ASSERT_EQ(got.feasible, want.feasible) << context;
  EXPECT_EQ(got.budget_met, want.budget_met) << context;
  EXPECT_EQ(got.placement, want.placement) << context;
  if (!want.feasible) return;
  EXPECT_DOUBLE_EQ(got.breakdown.cost, want.breakdown.cost) << context;
  EXPECT_DOUBLE_EQ(got.power, want.power) << context;
  EXPECT_EQ(got.breakdown.servers, want.breakdown.servers) << context;
  EXPECT_EQ(got.breakdown.reused, want.breakdown.reused) << context;
  ASSERT_EQ(got.frontier.size(), want.frontier.size()) << context;
  for (std::size_t i = 0; i < want.frontier.size(); ++i) {
    EXPECT_DOUBLE_EQ(got.frontier[i].cost, want.frontier[i].cost) << context;
    EXPECT_DOUBLE_EQ(got.frontier[i].power, want.frontier[i].power)
        << context;
    EXPECT_EQ(got.frontier[i].placement, want.frontier[i].placement)
        << context;
  }
}

struct FuzzSetup {
  std::string algo;
  int num_internal = 24;
  bool single_mode = false;
};

Instance make_instance(Tree& tree, const FuzzSetup& setup,
                       const ModeSet& modes, const CostModel& costs) {
  return setup.single_mode
             ? Instance::single_mode(tree.topology_ptr(), tree.scenario(), 10,
                                     0.1, 0.01)
             : Instance{tree.topology_ptr(), tree.scenario(), modes, costs,
                        std::nullopt};
}

std::string save_to_bytes(SolveSession& session) {
  std::ostringstream sink;
  binio::Writer writer(sink);
  session.save(writer);
  return sink.str();
}

void restore_from_bytes(SolveSession& session, const std::string& bytes) {
  std::istringstream source(bytes);
  binio::Reader reader(source, bytes.size());
  session.restore(reader);
}

/// The work counters of one solve, as a session-stats delta.
struct WorkDelta {
  std::uint64_t nodes_recomputed, nodes_reused, merge_steps,
      signatures_checked, cells_skipped;

  static WorkDelta diff(const SolveSession::Stats& after,
                        const SolveSession::Stats& before) {
    return {after.nodes_recomputed - before.nodes_recomputed,
            after.nodes_reused - before.nodes_reused,
            after.merge_steps - before.merge_steps,
            after.signatures_checked - before.signatures_checked,
            after.cells_skipped - before.cells_skipped};
  }
};

void expect_same_work(const WorkDelta& got, const WorkDelta& want,
                      const std::string& context) {
  EXPECT_EQ(got.nodes_recomputed, want.nodes_recomputed) << context;
  EXPECT_EQ(got.nodes_reused, want.nodes_reused) << context;
  EXPECT_EQ(got.merge_steps, want.merge_steps) << context;
  EXPECT_EQ(got.signatures_checked, want.signatures_checked) << context;
  EXPECT_EQ(got.cells_skipped, want.cells_skipped) << context;
}

void run_snapshot_fuzz(const FuzzSetup& setup, int solver_threads) {
  const ModeSet modes = setup.single_mode
                            ? ModeSet::single(10)
                            : ModeSet({5, 10}, 12.5, 3.0);
  const CostModel costs =
      setup.single_mode
          ? CostModel::simple(0.1, 0.01)
          : CostModel::uniform(modes.count(), 0.1, 0.01, 0.001, 0.001);

  const auto solver = make_solver(setup.algo);
  const auto cold_solver = make_solver(setup.algo);
  solver->set_options(Solver::Options{solver_threads});
  cold_solver->set_options(Solver::Options{solver_threads});
  ASSERT_TRUE(any(solver->caps() & SolverCaps::kIncremental));

  for (std::uint64_t index = 0; index < 2; ++index) {
    // The live session accumulates warm state over a few delta steps.
    Tree tree = make_fuzz_tree(91, index, setup.num_internal);
    SolveSession live(tree.topology_ptr());
    Xoshiro256 rng = make_rng(91, index, RngStream::kWorkloadUpdate);
    std::vector<ScenarioDelta> history;

    solver->solve(SolveRequest{make_instance(tree, setup, modes, costs), {},
                               &live});
    for (int step = 0; step < 4; ++step) {
      const std::vector<ScenarioDelta> deltas =
          random_step(tree.topology(), rng);
      for (const ScenarioDelta& d : deltas) {
        apply_delta(tree.scenario(), d);
        history.push_back(d);
      }
      solver->solve(SolveRequest{make_instance(tree, setup, modes, costs),
                                 deltas, &live});
    }

    const std::string bytes = save_to_bytes(live);
    ASSERT_FALSE(bytes.empty());
    // Serialization is deterministic: saving twice gives identical bytes.
    EXPECT_EQ(bytes, save_to_bytes(live));

    // Restore into a session over a *separately built* identical topology
    // (the process-restart case: same structure, different object) whose
    // scenario replayed the same edit history.
    Tree tree2 = make_fuzz_tree(91, index, setup.num_internal);
    for (const ScenarioDelta& d : history) apply_delta(tree2.scenario(), d);
    SolveSession restored(tree2.topology_ptr());
    restore_from_bytes(restored, bytes);

    // One more delta step, solved on both sessions plus a cold reference:
    // solutions and warm work counters must match bit-identically.
    for (int step = 0; step < 3; ++step) {
      const std::string context =
          setup.algo + " threads=" + std::to_string(solver_threads) +
          " tree=" + std::to_string(index) + " post-restore step " +
          std::to_string(step);
      const std::vector<ScenarioDelta> deltas =
          random_step(tree.topology(), rng);
      for (const ScenarioDelta& d : deltas) {
        apply_delta(tree.scenario(), d);
        apply_delta(tree2.scenario(), d);
      }
      const Instance live_inst = make_instance(tree, setup, modes, costs);
      const Instance restored_inst = make_instance(tree2, setup, modes,
                                                   costs);
      const SolveSession::Stats live_before = live.stats();
      const SolveSession::Stats restored_before = restored.stats();
      const Solution warm_live =
          solver->solve(SolveRequest{live_inst, deltas, &live});
      const Solution warm_restored =
          solver->solve(SolveRequest{restored_inst, deltas, &restored});
      const Solution cold = cold_solver->solve(live_inst);

      expect_identical(warm_live, cold, context + " (live vs cold)");
      expect_identical(warm_restored, cold, context + " (restored vs cold)");
      EXPECT_EQ(warm_live.stats.work, warm_restored.stats.work) << context;
      expect_same_work(
          WorkDelta::diff(restored.stats(), restored_before),
          WorkDelta::diff(live.stats(), live_before), context);
    }
    // The restored session went warm from its very first solve — the whole
    // point of persistence (a cold session would re-attach and recompute).
    EXPECT_EQ(restored.stats().cold_solves, 0u);
    EXPECT_GT(restored.stats().nodes_reused, 0u);
  }
}

TEST(SessionSnapshotTest, PowerSymRoundTripSerial) {
  run_snapshot_fuzz({"power-sym", 24, false}, /*solver_threads=*/1);
}

TEST(SessionSnapshotTest, PowerSymRoundTripThreaded) {
  run_snapshot_fuzz({"power-sym", 24, false}, /*solver_threads=*/4);
}

TEST(SessionSnapshotTest, PowerExactRoundTripSerial) {
  run_snapshot_fuzz({"power-exact", 12, false}, /*solver_threads=*/1);
}

TEST(SessionSnapshotTest, PowerExactRoundTripThreaded) {
  run_snapshot_fuzz({"power-exact", 12, false}, /*solver_threads=*/4);
}

TEST(SessionSnapshotTest, UpdateDpRoundTripSerial) {
  run_snapshot_fuzz({"update-dp", 24, true}, /*solver_threads=*/1);
}

TEST(SessionSnapshotTest, UpdateDpRoundTripThreaded) {
  run_snapshot_fuzz({"update-dp", 24, true}, /*solver_threads=*/4);
}

// ---------------------------------------------------------------------------
// Compaction: SolveSession::compact() packs resident tables losslessly.

// `expect_halved`: the >= 2x floor only binds for the power-sym serving
// engine, whose flow/decision tables dominate its sessions.  The other
// engines' fuzz trees carry many one-cell slot tables where the
// smaller-only commit rule in NodeState::pack leaves nodes arena-backed;
// for them the gate is monotonicity (compact never grows a session) plus
// the same bit-identity and serialization checks.
void run_compact_fuzz(const FuzzSetup& setup, bool expect_halved) {
  const ModeSet modes = setup.single_mode
                            ? ModeSet::single(10)
                            : ModeSet({5, 10}, 12.5, 3.0);
  const CostModel costs =
      setup.single_mode
          ? CostModel::simple(0.1, 0.01)
          : CostModel::uniform(modes.count(), 0.1, 0.01, 0.001, 0.001);
  const auto solver = make_solver(setup.algo);
  const auto cold_solver = make_solver(setup.algo);

  Tree tree = make_fuzz_tree(93, 0, setup.num_internal);
  SolveSession session(tree.topology_ptr());
  Xoshiro256 rng = make_rng(93, 0, RngStream::kWorkloadUpdate);
  solver->solve(
      SolveRequest{make_instance(tree, setup, modes, costs), {}, &session});

  for (int step = 0; step < 6; ++step) {
    // Compact between steps: resident bytes must drop >= 2x (the solve
    // just unpacked the whole reconstruction walk) and the next warm
    // solve (which unpacks on demand) must stay bit-identical.
    const std::string unpacked_bytes = save_to_bytes(session);
    const std::size_t before = session.resident_bytes();
    const std::size_t after = session.compact();
    EXPECT_EQ(session.resident_bytes(), after);
    if (expect_halved) {
      EXPECT_LE(after * 2, before)
          << setup.algo << " step " << step
          << ": narrow-cell packing must at least halve resident bytes";
    } else {
      EXPECT_LE(after, before)
          << setup.algo << " step " << step
          << ": compact() must never grow a session";
    }
    EXPECT_EQ(session.compact(), after) << "compact() must be idempotent";
    // A compacted session serializes to the same bytes as an unpacked one
    // (deterministic pack), so persistence is compaction-oblivious.
    EXPECT_EQ(save_to_bytes(session), unpacked_bytes)
        << setup.algo << " step " << step;

    const std::vector<ScenarioDelta> deltas =
        random_step(tree.topology(), rng);
    for (const ScenarioDelta& d : deltas) apply_delta(tree.scenario(), d);
    const Instance instance = make_instance(tree, setup, modes, costs);
    const Solution warm =
        solver->solve(SolveRequest{instance, deltas, &session});
    expect_identical(warm, cold_solver->solve(instance),
                     setup.algo + " compacted step " + std::to_string(step));
  }

  // Round-trip a compacted session through the snapshot and ensure the
  // restored session solves identically warm.
  const std::string bytes = save_to_bytes(session);
  Tree tree2 = make_fuzz_tree(93, 0, setup.num_internal);
  // Replay the live scenario wholesale (same topology, same state).
  for (NodeId client : tree.client_ids()) {
    tree2.set_requests(client, tree.requests(client));
  }
  for (NodeId node : tree.internal_ids()) {
    if (tree.pre_existing(node)) {
      tree2.set_pre_existing(node, tree.original_mode(node));
    } else {
      tree2.clear_pre_existing(node);
    }
  }
  SolveSession restored(tree2.topology_ptr());
  restore_from_bytes(restored, bytes);
  const std::vector<ScenarioDelta> deltas =
      random_step(tree2.topology(), rng);
  for (const ScenarioDelta& d : deltas) {
    apply_delta(tree.scenario(), d);
    apply_delta(tree2.scenario(), d);
  }
  const Instance instance = make_instance(tree2, setup, modes, costs);
  const Solution warm =
      solver->solve(SolveRequest{instance, deltas, &restored});
  expect_identical(warm, cold_solver->solve(instance),
                   setup.algo + " restored-from-compacted");
  EXPECT_EQ(restored.stats().cold_solves, 0u);
}

TEST(SessionSnapshotTest, CompactHalvesResidentBytesPowerSym) {
  run_compact_fuzz({"power-sym", 24, false}, /*expect_halved=*/true);
}

TEST(SessionSnapshotTest, CompactShrinksLosslesslyPowerExact) {
  run_compact_fuzz({"power-exact", 12, false}, /*expect_halved=*/false);
}

TEST(SessionSnapshotTest, CompactShrinksLosslesslyUpdateDp) {
  run_compact_fuzz({"update-dp", 24, true}, /*expect_halved=*/false);
}

// ---------------------------------------------------------------------------
// Contraction: snapshots are contraction-free (save() decontracts first),
// so persistence is oblivious to whether a session ran its warm days on
// contracted trees — same bytes, same restore, and a restored shard
// re-contracts by itself on its next localized batch.

/// Star of chains (16 arms x 3 internal links, a client per link): deep
/// enough that contraction hides real interiors, small enough that one
/// hot arm passes the delta fast-path gate.
Tree make_chain_star() {
  TreeBuilder builder;
  const NodeId root = builder.add_root();
  for (int a = 0; a < 16; ++a) {
    NodeId at = root;
    for (int d = 0; d < 3; ++d) {
      at = builder.add_internal(at);
      builder.add_client(at, 1 + ((a + d) % 3));
    }
    if (a % 3 == 0) builder.set_pre_existing(at, 0);
  }
  return std::move(builder).build();
}

SolveSession::Options contract_options() {
  SolveSession::Options options;
  options.contract = true;
  options.contract_min_internal = 32;
  options.contract_min_shrink = 2;
  return options;
}

TEST(SessionSnapshotTest, ContractedSessionSnapshotsDecontractLosslessly) {
  Tree tree = make_chain_star();
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const auto solver = make_solver("power-sym");
  const auto cold_solver = make_solver("power-sym");
  const auto instance = [&](Tree& t) {
    return Instance{t.topology_ptr(), t.scenario(), modes, costs,
                    std::nullopt};
  };

  // Warm a contract-enabled session and a plain twin over the same hot-arm
  // day until the contracted one has actually sealed subtrees.
  SolveSession contracted(tree.topology_ptr(), contract_options());
  SolveSession plain(tree.topology_ptr());
  const NodeId hot = tree.client_ids()[2];  // the first arm's deepest client
  std::vector<ScenarioDelta> history;
  solver->solve(SolveRequest{instance(tree), {}, &contracted});
  solver->solve(SolveRequest{instance(tree), {}, &plain});
  for (int step = 0; step < 4; ++step) {
    const std::vector<ScenarioDelta> deltas{
        ScenarioDelta::set_requests(hot, 1 + step % 4)};
    apply_delta(tree.scenario(), deltas.front());
    history.push_back(deltas.front());
    solver->solve(SolveRequest{instance(tree), deltas, &contracted});
    solver->solve(SolveRequest{instance(tree), deltas, &plain});
  }
  ASSERT_GT(contracted.stats().subtrees_sealed, 0u);

  // save() writes back the live contraction first, so a contracted-warm
  // session serializes to the exact bytes of its uncontracted twin — the
  // snapshot format never sees contraction state.
  const std::string bytes = save_to_bytes(contracted);
  EXPECT_EQ(bytes, save_to_bytes(plain));
  // And deterministically: the second save (now decontracted) matches.
  EXPECT_EQ(bytes, save_to_bytes(contracted));

  // Restore into a contract-enabled session over a separately built
  // identical topology; it must go warm immediately AND re-contract on
  // its own once the day stays localized.
  Tree tree2 = make_chain_star();
  for (const ScenarioDelta& d : history) apply_delta(tree2.scenario(), d);
  SolveSession restored(tree2.topology_ptr(), contract_options());
  restore_from_bytes(restored, bytes);
  for (int step = 0; step < 3; ++step) {
    const std::vector<ScenarioDelta> deltas{
        ScenarioDelta::set_requests(hot, 2 + step % 3)};
    apply_delta(tree2.scenario(), deltas.front());
    const Solution warm =
        solver->solve(SolveRequest{instance(tree2), deltas, &restored});
    expect_identical(warm, cold_solver->solve(instance(tree2)),
                     "restored contracted step " + std::to_string(step));
  }
  EXPECT_EQ(restored.stats().cold_solves, 0u);
  EXPECT_GT(restored.stats().subtrees_sealed, 0u);
}

TEST(SessionSnapshotTest, ContractedSnapshotCorruptionRejectedCleanly) {
  Tree tree = make_chain_star();
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const auto solver = make_solver("power-sym");
  const auto cold_solver = make_solver("power-sym");
  const auto instance = [&] {
    return Instance{tree.topology_ptr(), tree.scenario(), modes, costs,
                    std::nullopt};
  };

  SolveSession session(tree.topology_ptr(), contract_options());
  const NodeId hot = tree.client_ids()[2];
  solver->solve(SolveRequest{instance(), {}, &session});
  for (int step = 0; step < 3; ++step) {
    const std::vector<ScenarioDelta> deltas{
        ScenarioDelta::set_requests(hot, 1 + step)};
    apply_delta(tree.scenario(), deltas.front());
    solver->solve(SolveRequest{instance(), deltas, &session});
  }
  ASSERT_GT(session.stats().subtrees_sealed, 0u);
  const std::string bytes = save_to_bytes(session);

  // Flip sampled bytes across the whole snapshot: every corruption must
  // throw, and the contract-enabled target must stay untouched — still
  // able to solve bit-identically and go contracted-warm afterwards.
  const std::size_t stride = std::max<std::size_t>(1, bytes.size() / 29);
  for (std::size_t i = 0; i < bytes.size(); i += stride) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x5A);
    SolveSession target(tree.topology_ptr(), contract_options());
    EXPECT_THROW(restore_from_bytes(target, corrupted), CheckError)
        << "flipped byte " << i << " not rejected";
    const Solution warm = solver->solve(SolveRequest{instance(), {}, &target});
    expect_identical(warm, cold_solver->solve(instance()),
                     "post-failed-restore contracted solve");
  }

  // The pristine bytes still restore fine into a contract-enabled session.
  SolveSession target(tree.topology_ptr(), contract_options());
  restore_from_bytes(target, bytes);
  const std::vector<ScenarioDelta> deltas{ScenarioDelta::set_requests(hot, 4)};
  apply_delta(tree.scenario(), deltas.front());
  expect_identical(solver->solve(SolveRequest{instance(), deltas, &target}),
                   cold_solver->solve(instance()),
                   "restore-after-corruption-fuzz");
}

// ---------------------------------------------------------------------------
// Rejection: bad snapshots throw CheckError and leave no partial state.

struct RejectionRig {
  Tree tree = make_fuzz_tree(92, 0, 12);
  ModeSet modes = ModeSet::single(10);
  CostModel costs = CostModel::simple(0.1, 0.01);
  std::unique_ptr<Solver> solver = make_solver("update-dp");
  std::string bytes;

  RejectionRig() {
    SolveSession session(tree.topology_ptr());
    const Instance instance = Instance::single_mode(
        tree.topology_ptr(), tree.scenario(), 10, 0.1, 0.01);
    solver->solve(SolveRequest{instance, {}, &session});
    const NodeId client = tree.client_ids().front();
    const std::vector<ScenarioDelta> deltas{
        ScenarioDelta::set_requests(client, tree.requests(client) + 1)};
    apply_delta(tree.scenario(), deltas.front());
    solver->solve(
        SolveRequest{Instance::single_mode(tree.topology_ptr(),
                                           tree.scenario(), 10, 0.1, 0.01),
                     deltas, &session});
    std::ostringstream sink;
    binio::Writer writer(sink);
    session.save(writer);
    bytes = sink.str();
  }

  /// A session that failed a restore must still solve bit-identically to
  /// cold — the no-partial-restore guarantee in action.
  void expect_untouched_and_usable(SolveSession& session) {
    const Instance instance = Instance::single_mode(
        tree.topology_ptr(), tree.scenario(), 10, 0.1, 0.01);
    const Solution warm = solver->solve(SolveRequest{instance, {}, &session});
    const Solution cold = solver->solve(instance);
    expect_identical(warm, cold, "post-failed-restore solve");
  }
};

TEST(SessionSnapshotTest, TruncatedSnapshotsRejectedCleanly) {
  RejectionRig rig;
  ASSERT_GT(rig.bytes.size(), 64u);
  // Every header byte plus ~100 samples across the body and the very end.
  std::vector<std::size_t> cuts;
  for (std::size_t i = 0; i < 64; ++i) cuts.push_back(i);
  const std::size_t stride = std::max<std::size_t>(1, rig.bytes.size() / 97);
  for (std::size_t i = 64; i < rig.bytes.size(); i += stride) {
    cuts.push_back(i);
  }
  cuts.push_back(rig.bytes.size() - 1);
  for (const std::size_t cut : cuts) {
    SolveSession session(rig.tree.topology_ptr());
    EXPECT_THROW(
        restore_from_bytes(session, rig.bytes.substr(0, cut)), CheckError)
        << "truncation at byte " << cut << " not rejected";
  }
  // The session is untouched after a failed restore (spot-check).
  SolveSession session(rig.tree.topology_ptr());
  EXPECT_THROW(
      restore_from_bytes(session, rig.bytes.substr(0, rig.bytes.size() / 2)),
      CheckError);
  rig.expect_untouched_and_usable(session);
}

TEST(SessionSnapshotTest, CorruptSnapshotsRejectedCleanly) {
  RejectionRig rig;
  const std::size_t stride = std::max<std::size_t>(1, rig.bytes.size() / 53);
  for (std::size_t i = 0; i < rig.bytes.size(); i += stride) {
    std::string corrupted = rig.bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x5A);
    SolveSession session(rig.tree.topology_ptr());
    EXPECT_THROW(restore_from_bytes(session, corrupted), CheckError)
        << "flipped byte " << i << " not rejected";
    rig.expect_untouched_and_usable(session);
  }
}

TEST(SessionSnapshotTest, WrongVersionRejected) {
  RejectionRig rig;
  std::string bad = rig.bytes;
  bad[8] = 99;  // the u32 version field follows the 8-byte magic
  SolveSession session(rig.tree.topology_ptr());
  EXPECT_THROW(restore_from_bytes(session, bad), CheckError);
  rig.expect_untouched_and_usable(session);
}

TEST(SessionSnapshotTest, WrongMagicRejected) {
  RejectionRig rig;
  std::string bad = rig.bytes;
  bad[0] = 'X';
  SolveSession session(rig.tree.topology_ptr());
  EXPECT_THROW(restore_from_bytes(session, bad), CheckError);
}

TEST(SessionSnapshotTest, WrongTopologyRejected) {
  RejectionRig rig;
  Tree other = make_fuzz_tree(93, 1, 12);
  ASSERT_NE(other.topology().structural_hash(),
            rig.tree.topology().structural_hash());
  SolveSession session(other.topology_ptr());
  EXPECT_THROW(restore_from_bytes(session, rig.bytes), CheckError);
}

TEST(SessionSnapshotTest, EmptySessionRoundTrips) {
  Tree tree = make_fuzz_tree(94, 0, 12);
  SolveSession session(tree.topology_ptr());
  const std::string bytes = save_to_bytes(session);
  SolveSession restored(tree.topology_ptr());
  restore_from_bytes(restored, bytes);  // no caches: header + CRC only
  EXPECT_EQ(restored.stats().warm_solves, 0u);
}

}  // namespace
}  // namespace treeplace
