// Concurrent solves over one shared Topology with distinct Scenario forks.
//
// This is the race-freedom contract the Topology/Scenario split exists for:
// the immutable topology is shared read-only across threads, every solve
// owns its forked scenario, and results are bit-identical to the same
// solves run serially.  Run under the CI ASan+UBSan job (and TSan locally)
// this is the regression net for cross-thread sharing.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "solver/registry.h"
#include "support/prng.h"

namespace treeplace {
namespace {

struct SolveOutcome {
  double cost = 0.0;
  double power = 0.0;
  Placement placement;
};

/// The per-thread workload: `rounds` solves over forked scenarios of the
/// shared topology, each with its own pre-existing set and request redraw.
std::vector<SolveOutcome> run_solves(
    const std::shared_ptr<const Topology>& topo, const Scenario& base,
    const Solver& solver, std::uint64_t stream, std::size_t rounds) {
  std::vector<SolveOutcome> out;
  out.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    Scenario scen = base;  // fork
    Xoshiro256 workload_rng =
        make_rng(/*seed=*/900 + stream, i, RngStream::kWorkloadUpdate);
    redraw_requests(scen, 1, 6, workload_rng);
    Xoshiro256 pre_rng = make_rng(900 + stream, i, RngStream::kPreExisting);
    assign_random_pre_existing(scen, 4, pre_rng);
    const Instance instance = Instance::single_mode(topo, std::move(scen),
                                                    /*capacity=*/10,
                                                    /*create=*/0.1,
                                                    /*delete_cost=*/0.01);
    const Solution solution = solver.solve(instance);
    EXPECT_TRUE(solution.feasible);
    out.push_back(SolveOutcome{solution.breakdown.cost, solution.power,
                               solution.placement});
  }
  return out;
}

TEST(ConcurrentSolvesTest, TwoThreadsOneTopologyDistinctScenarios) {
  TreeGenConfig config;
  config.num_internal = 40;
  config.client_probability = 0.8;
  const Tree tree = generate_tree(config, /*seed=*/31, /*index=*/0);
  const std::shared_ptr<const Topology> topo = tree.topology_ptr();
  const Scenario base = tree.scenario();

  const auto solver = make_solver("update-dp");
  constexpr std::size_t kRounds = 12;

  // Serial reference, one stream per future thread.
  const auto serial_a = run_solves(topo, base, *solver, /*stream=*/1, kRounds);
  const auto serial_b = run_solves(topo, base, *solver, /*stream=*/2, kRounds);

  // The same two streams, concurrently over the same shared topology.
  std::vector<SolveOutcome> parallel_a;
  std::vector<SolveOutcome> parallel_b;
  std::thread ta([&] {
    parallel_a = run_solves(topo, base, *solver, /*stream=*/1, kRounds);
  });
  std::thread tb([&] {
    parallel_b = run_solves(topo, base, *solver, /*stream=*/2, kRounds);
  });
  ta.join();
  tb.join();

  ASSERT_EQ(parallel_a.size(), serial_a.size());
  ASSERT_EQ(parallel_b.size(), serial_b.size());
  for (std::size_t i = 0; i < kRounds; ++i) {
    EXPECT_DOUBLE_EQ(parallel_a[i].cost, serial_a[i].cost);
    EXPECT_EQ(parallel_a[i].placement, serial_a[i].placement);
    EXPECT_DOUBLE_EQ(parallel_b[i].cost, serial_b[i].cost);
    EXPECT_EQ(parallel_b[i].placement, serial_b[i].placement);
  }
  // The base scenario and tree were never touched.
  EXPECT_EQ(base.num_pre_existing(), 0u);
  EXPECT_EQ(tree.total_requests(), base.total_requests());
}

TEST(ConcurrentSolvesTest, ManyThreadsSharedTopologyPowerSolver) {
  TreeGenConfig config;
  config.num_internal = 16;
  config.client_probability = 0.8;
  config.max_requests = 5;
  const Tree tree = generate_tree(config, /*seed=*/32, /*index=*/0);
  const std::shared_ptr<const Topology> topo = tree.topology_ptr();
  const Scenario base = tree.scenario();

  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const auto solver = make_solver("power-sym");

  constexpr std::size_t kThreads = 4;
  std::vector<Solution> results(kThreads);
  std::vector<Solution> expected(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    Scenario scen = base;
    Xoshiro256 pre_rng = make_rng(950, t, RngStream::kPreExisting);
    assign_random_pre_existing(scen, 3, pre_rng, modes.count());
    expected[t] = solver->solve(
        Instance{topo, std::move(scen), modes, costs, std::nullopt});
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Scenario scen = base;
      Xoshiro256 pre_rng = make_rng(950, t, RngStream::kPreExisting);
      assign_random_pre_existing(scen, 3, pre_rng, modes.count());
      results[t] = solver->solve(
          Instance{topo, std::move(scen), modes, costs, std::nullopt});
    });
  }
  for (std::thread& t : threads) t.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(results[t].feasible);
    EXPECT_DOUBLE_EQ(results[t].breakdown.cost, expected[t].breakdown.cost);
    EXPECT_DOUBLE_EQ(results[t].power, expected[t].power);
    EXPECT_EQ(results[t].placement, expected[t].placement);
    ASSERT_EQ(results[t].frontier.size(), expected[t].frontier.size());
  }
}

}  // namespace
}  // namespace treeplace
