// Frozen-subtree contraction: structure, delta mapping, and end-to-end
// bit-identity.
//
// The structural half checks Contraction directly — open closures, sealed
// leaves, id maps, scenario contraction, the delta edge cases (an edit
// landing exactly on a sealed-subtree root, an edit hidden inside one) and
// placement expansion.  The session half drives the three incremental
// engines (power-exact, power-sym, update-dp) at 1 and 4 threads over a
// contract-enabled SolveSession and a plain twin on the same topology:
// every solve must be bit-identical — results AND work counters (the new
// sealed counters excepted) — whether the warm day ran contracted or not,
// including the tick where a sealed subtree goes dirty and must unseal.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "solver/registry.h"
#include "solver/session.h"
#include "support/prng.h"
#include "tree/contract.h"
#include "tree/scenario_delta.h"

namespace treeplace {
namespace {

// --- Structural unit tests --------------------------------------------------

/// root ── a ── a1 (client c_a1), a's client c_a
///      ── b ── b1 (client c_b1), b2 (client c_b2)
///      ── client c_r
struct SmallTree {
  Tree tree;
  NodeId root, a, a1, b, b1, b2;
  NodeId c_r, c_a, c_a1, c_b1, c_b2;
};

SmallTree make_small_tree() {
  SmallTree t;
  TreeBuilder builder;
  t.root = builder.add_root();
  t.a = builder.add_internal(t.root);
  t.a1 = builder.add_internal(t.a);
  t.b = builder.add_internal(t.root);
  t.b1 = builder.add_internal(t.b);
  t.b2 = builder.add_internal(t.b);
  t.c_r = builder.add_client(t.root, 1);
  t.c_a = builder.add_client(t.a, 2);
  t.c_a1 = builder.add_client(t.a1, 3);
  t.c_b1 = builder.add_client(t.b1, 4);
  t.c_b2 = builder.add_client(t.b2, 5);
  builder.set_pre_existing(t.b, 1);
  builder.set_pre_existing(t.b1, 0);
  t.tree = std::move(builder).build();
  return t;
}

Contraction contract_around(const SmallTree& t, std::vector<NodeId> touched) {
  return Contraction(t.tree.topology_ptr(),
                     Contraction::open_closure(t.tree.topology(), touched));
}

TEST(ContractionTest, OpenClosureWalksToTheRoot) {
  const SmallTree t = make_small_tree();
  const Topology& topo = t.tree.topology();
  const std::vector<NodeId> touched{t.a1};
  const std::vector<std::uint8_t> open = Contraction::open_closure(topo,
                                                                   touched);
  EXPECT_EQ(open[topo.internal_index(t.root)], 1);
  EXPECT_EQ(open[topo.internal_index(t.a)], 1);
  EXPECT_EQ(open[topo.internal_index(t.a1)], 1);
  EXPECT_EQ(open[topo.internal_index(t.b)], 0);
  EXPECT_EQ(open[topo.internal_index(t.b1)], 0);
  EXPECT_EQ(open[topo.internal_index(t.b2)], 0);

  // The root stays open even with nothing touched.
  const std::vector<std::uint8_t> empty =
      Contraction::open_closure(topo, std::vector<NodeId>{});
  EXPECT_EQ(empty[topo.internal_index(t.root)], 1);
}

TEST(ContractionTest, SealsMaximalUntouchedSubtrees) {
  const SmallTree t = make_small_tree();
  const Contraction map = contract_around(t, {t.a1});
  const Topology& ctopo = *map.contracted();

  // root, a, a1 survive open; b becomes one sealed leaf; b1/b2 vanish.
  EXPECT_EQ(ctopo.num_internal(), 4u);
  EXPECT_EQ(map.num_sealed(), 1u);
  EXPECT_EQ(map.hidden_internal(), 2u);
  ASSERT_EQ(map.sealed_roots().size(), 1u);
  EXPECT_EQ(map.sealed_roots()[0], t.b);

  const NodeId cb = map.to_contracted(t.b);
  ASSERT_NE(cb, kNoNode);
  EXPECT_EQ(map.to_original(cb), t.b);
  EXPECT_NE(map.sealed()[ctopo.internal_index(cb)], 0);
  // A sealed leaf is childless: its table is injected, never recomputed.
  EXPECT_TRUE(ctopo.children(cb).empty());

  // Hidden nodes (sealed interiors and their clients) have no contracted id.
  EXPECT_EQ(map.to_contracted(t.b1), kNoNode);
  EXPECT_EQ(map.to_contracted(t.b2), kNoNode);
  EXPECT_EQ(map.to_contracted(t.c_b1), kNoNode);

  // Open nodes round-trip, clients of open nodes included.
  for (NodeId id : {t.root, t.a, t.a1, t.c_r, t.c_a, t.c_a1}) {
    const NodeId c = map.to_contracted(id);
    ASSERT_NE(c, kNoNode) << id;
    EXPECT_EQ(map.to_original(c), id);
  }
}

TEST(ContractionTest, ContractedScenarioKeepsOpenStateAndSealedRootPre) {
  const SmallTree t = make_small_tree();
  const Contraction map = contract_around(t, {t.a1});
  const Scenario scen = map.contract(t.tree.scenario());
  const Topology& ctopo = *map.contracted();

  EXPECT_EQ(scen.requests(map.to_contracted(t.c_a1)), 3u);
  EXPECT_EQ(scen.requests(map.to_contracted(t.c_r)), 1u);
  // The sealed root keeps its pre-existing state — engines read a child's
  // E membership to size its leaf table — but owns no clients.
  const NodeId cb = map.to_contracted(t.b);
  EXPECT_TRUE(scen.pre_existing(cb));
  EXPECT_EQ(scen.original_mode(cb), 1);
  EXPECT_EQ(scen.client_mass(cb), 0u);
  // Hidden pre-existing nodes (b1) are simply absent from the contracted E.
  EXPECT_EQ(scen.num_pre_existing(), 1u);
  EXPECT_EQ(ctopo.num_clients(), 3u);
}

TEST(ContractionTest, MapDeltasHandlesSealedAndHiddenEdits) {
  const SmallTree t = make_small_tree();
  const Contraction map = contract_around(t, {t.a1});

  // Open edits renumber.
  const std::vector<ScenarioDelta> open_edits{
      ScenarioDelta::set_requests(t.c_a1, 7),
      ScenarioDelta::set_pre_existing(t.a, 0)};
  const auto mapped = map.map_deltas(open_edits);
  ASSERT_TRUE(mapped.has_value());
  ASSERT_EQ(mapped->size(), 2u);
  EXPECT_EQ((*mapped)[0].node, map.to_contracted(t.c_a1));
  EXPECT_EQ((*mapped)[1].node, map.to_contracted(t.a));

  // A delta landing exactly ON the sealed-subtree root must unseal: the
  // root's own signature is frozen into the injected table.
  EXPECT_FALSE(map.map_deltas(std::vector<ScenarioDelta>{
                     ScenarioDelta::set_pre_existing(t.b, 0)})
                   .has_value());
  EXPECT_FALSE(map.map_deltas(std::vector<ScenarioDelta>{
                     ScenarioDelta::clear_pre_existing(t.b)})
                   .has_value());
  // Edits hidden strictly inside the sealed subtree.
  EXPECT_FALSE(map.map_deltas(std::vector<ScenarioDelta>{
                     ScenarioDelta::set_requests(t.c_b1, 9)})
                   .has_value());
  EXPECT_FALSE(map.map_deltas(std::vector<ScenarioDelta>{
                     ScenarioDelta::set_pre_existing(t.b2, 0)})
                   .has_value());
  // Unattributable edits.
  EXPECT_FALSE(map.map_deltas(std::vector<ScenarioDelta>{
                     ScenarioDelta::clear_all_pre()})
                   .has_value());
}

TEST(ContractionTest, ExpandRenumbersSealedLeavesToSubtreeRoots) {
  const SmallTree t = make_small_tree();
  const Contraction map = contract_around(t, {t.a1});

  Placement contracted;
  contracted.add(map.to_contracted(t.b), 1);   // the sealed leaf itself
  contracted.add(map.to_contracted(t.a1), 0);  // an open node
  const Placement expanded = map.expand(contracted);

  Placement want;
  want.add(t.b, 1);
  want.add(t.a1, 0);
  EXPECT_EQ(expanded, want);
}

// --- Session-level bit-identity ---------------------------------------------

SolveSession::Options contract_options() {
  SolveSession::Options options;
  options.contract = true;
  options.contract_min_internal = 32;
  options.contract_min_shrink = 2;
  return options;
}

void expect_identical(const Solution& got, const Solution& want,
                      const std::string& context) {
  ASSERT_EQ(got.feasible, want.feasible) << context;
  EXPECT_EQ(got.budget_met, want.budget_met) << context;
  EXPECT_EQ(got.placement, want.placement) << context;
  if (!want.feasible) return;
  EXPECT_DOUBLE_EQ(got.breakdown.cost, want.breakdown.cost) << context;
  EXPECT_DOUBLE_EQ(got.power, want.power) << context;
  EXPECT_EQ(got.breakdown.servers, want.breakdown.servers) << context;
  EXPECT_EQ(got.breakdown.reused, want.breakdown.reused) << context;
  ASSERT_EQ(got.frontier.size(), want.frontier.size()) << context;
  for (std::size_t i = 0; i < want.frontier.size(); ++i) {
    EXPECT_DOUBLE_EQ(got.frontier[i].cost, want.frontier[i].cost) << context;
    EXPECT_DOUBLE_EQ(got.frontier[i].power, want.frontier[i].power)
        << context;
    EXPECT_EQ(got.frontier[i].placement, want.frontier[i].placement)
        << context;
  }
}

/// Work counters must match the uncontracted twin exactly; only the two
/// sealed counters are allowed to differ (the twin never seals).
void expect_same_counters(const SolveSession& contracted,
                          const SolveSession& plain,
                          const std::string& context) {
  const SolveSession::Stats c = contracted.stats();
  const SolveSession::Stats p = plain.stats();
  EXPECT_EQ(c.warm_solves, p.warm_solves) << context;
  EXPECT_EQ(c.cold_solves, p.cold_solves) << context;
  EXPECT_EQ(c.nodes_recomputed, p.nodes_recomputed) << context;
  EXPECT_EQ(c.nodes_reused, p.nodes_reused) << context;
  EXPECT_EQ(c.merge_steps, p.merge_steps) << context;
  EXPECT_EQ(c.signatures_checked, p.signatures_checked) << context;
  EXPECT_EQ(c.cells_skipped, p.cells_skipped) << context;
}

struct ContractFuzzSetup {
  std::string algo;
  int num_internal = 96;
  bool single_mode = false;
  int steps = 10;
  double client_probability = 0.5;
  RequestCount max_requests = 2;
};

/// Drives localized delta days over one topology through a contract-enabled
/// session, a plain warm session, and a cold reference.  Deltas stay
/// feasible and mostly attributable so the work-counter comparison is
/// exact; a periodic clear-all forces a decontract + full resweep.
void run_contract_fuzz(const ContractFuzzSetup& setup, int solver_threads) {
  TreeGenConfig config;
  config.num_internal = setup.num_internal;
  config.shape = TreeShape{2, 3};
  config.client_probability = setup.client_probability;
  config.min_requests = 0;
  config.max_requests = setup.max_requests;

  const ModeSet modes = setup.single_mode ? ModeSet::single(10)
                                          : ModeSet({5, 10}, 12.5, 3.0);
  const CostModel costs =
      setup.single_mode
          ? CostModel::simple(0.1, 0.01)
          : CostModel::uniform(modes.count(), 0.1, 0.01, 0.001, 0.001);

  const auto contracted_solver = make_solver(setup.algo);
  const auto plain_solver = make_solver(setup.algo);
  const auto cold_solver = make_solver(setup.algo);
  contracted_solver->set_options(Solver::Options{solver_threads});
  plain_solver->set_options(Solver::Options{solver_threads});
  cold_solver->set_options(Solver::Options{solver_threads});

  bool sealed_somewhere = false;
  for (std::uint64_t index = 0; index < 2; ++index) {
    Tree tree = generate_tree(config, 2026, index);
    Xoshiro256 pre_rng = make_rng(2026, index, RngStream::kPreExisting);
    assign_random_pre_existing(tree, setup.num_internal / 8, pre_rng,
                               setup.single_mode ? 1 : 2);

    SolveSession contracted(tree.topology_ptr(), contract_options());
    SolveSession plain(tree.topology_ptr());
    Xoshiro256 rng = make_rng(2026, index, RngStream::kWorkloadUpdate);

    const auto instance = [&] {
      return setup.single_mode
                 ? Instance::single_mode(tree.topology_ptr(), tree.scenario(),
                                         10, 0.1, 0.01)
                 : Instance{tree.topology_ptr(), tree.scenario(), modes,
                            costs, std::nullopt};
    };

    // Warm both sessions up cold.
    contracted_solver->solve_incremental(instance(), {}, contracted);
    plain_solver->solve_incremental(instance(), {}, plain);

    NodeId last_client = kNoNode;
    for (int step = 0; step < setup.steps; ++step) {
      std::vector<ScenarioDelta> deltas;
      if (step > 0 && step % 6 == 0) {
        // Unattributable: both sessions fall back to the full sweep and
        // the contracted one must decontract losslessly first.
        deltas.push_back(ScenarioDelta::clear_all_pre());
      } else {
        // One localized client edit — the shape contraction targets.
        // Mostly re-edit the previous client: the effective set (touched ∪
        // last touched) then stays one root path, which is what lets the
        // fast-path gate — and with it contraction — fire.
        const auto& clients = tree.client_ids();
        const NodeId client =
            (last_client != kNoNode && rng.uniform(0, 3) != 0)
                ? last_client
                : clients[rng.uniform(0, clients.size() - 1)];
        last_client = client;
        deltas.push_back(ScenarioDelta::set_requests(
            client, rng.uniform(0, setup.max_requests)));
        if (rng.uniform(0, 3) == 0) {
          // Same root path: a pre toggle on the edited client's parent.
          deltas.push_back(ScenarioDelta::set_pre_existing(
              tree.parent(client),
              setup.single_mode ? 0 : static_cast<int>(rng.uniform(0, 1))));
        }
      }
      for (const ScenarioDelta& delta : deltas) {
        apply_delta(tree.scenario(), delta);
      }
      const std::string context =
          setup.algo + " threads=" + std::to_string(solver_threads) +
          " tree=" + std::to_string(index) + " step=" + std::to_string(step);
      const Solution cold = cold_solver->solve(instance());
      const Solution warm_contracted =
          contracted_solver->solve_incremental(instance(), deltas,
                                               contracted);
      const Solution warm_plain =
          plain_solver->solve_incremental(instance(), deltas, plain);
      expect_identical(warm_contracted, cold, context + " contracted");
      expect_identical(warm_plain, cold, context + " plain");
      expect_same_counters(contracted, plain, context);
    }
    if (contracted.stats().subtrees_sealed > 0) sealed_somewhere = true;
    EXPECT_EQ(plain.stats().subtrees_sealed, 0u);
  }
  // The localized days must actually exercise the contracted path.
  EXPECT_TRUE(sealed_somewhere)
      << setup.algo << ": no step ever ran contracted";
}

TEST(ContractedSolveTest, PowerSymBitIdenticalSerial) {
  run_contract_fuzz({"power-sym", 96, false, 10, 0.5, 2},
                    /*solver_threads=*/1);
}

TEST(ContractedSolveTest, PowerSymBitIdenticalThreaded) {
  run_contract_fuzz({"power-sym", 96, false, 10, 0.5, 2},
                    /*solver_threads=*/4);
}

TEST(ContractedSolveTest, PowerExactBitIdenticalSerial) {
  run_contract_fuzz({"power-exact", 64, false, 6, 0.3, 1},
                    /*solver_threads=*/1);
}

TEST(ContractedSolveTest, PowerExactBitIdenticalThreaded) {
  run_contract_fuzz({"power-exact", 64, false, 6, 0.3, 1},
                    /*solver_threads=*/4);
}

TEST(ContractedSolveTest, UpdateDpBitIdenticalSerial) {
  run_contract_fuzz({"update-dp", 96, true, 10, 0.5, 2},
                    /*solver_threads=*/1);
}

TEST(ContractedSolveTest, UpdateDpBitIdenticalThreaded) {
  run_contract_fuzz({"update-dp", 96, true, 10, 0.5, 2},
                    /*solver_threads=*/4);
}

/// Star of chains: root with `arms` arms, each a chain of `depth` internal
/// nodes carrying one client at every link.  Deep enough that sealing an
/// arm hides real interior nodes, wide enough that one dirty arm passes
/// the fast-path gate.
Tree make_chain_star(int arms, int depth) {
  TreeBuilder builder;
  const NodeId root = builder.add_root();
  for (int a = 0; a < arms; ++a) {
    NodeId at = root;
    for (int d = 0; d < depth; ++d) {
      at = builder.add_internal(at);
      builder.add_client(at, 1 + ((a + d) % 3));
    }
    if (a % 3 == 0) builder.set_pre_existing(at, 0);
  }
  return std::move(builder).build();
}

TEST(ContractedSolveTest, SealedSubtreeGoingDirtyUnsealsAndReseals) {
  Tree tree = make_chain_star(/*arms=*/16, /*depth=*/3);
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  const auto contracted_solver = make_solver("power-sym");
  const auto plain_solver = make_solver("power-sym");
  const auto cold_solver = make_solver("power-sym");
  SolveSession contracted(tree.topology_ptr(), contract_options());
  SolveSession plain(tree.topology_ptr());

  const auto instance = [&] {
    return Instance{tree.topology_ptr(), tree.scenario(), modes, costs,
                    std::nullopt};
  };
  const auto step = [&](const std::vector<ScenarioDelta>& deltas,
                        const std::string& context) {
    for (const ScenarioDelta& delta : deltas) {
      apply_delta(tree.scenario(), delta);
    }
    const Solution cold = cold_solver->solve(instance());
    expect_identical(
        contracted_solver->solve_incremental(instance(), deltas, contracted),
        cold, context + " contracted");
    expect_identical(
        plain_solver->solve_incremental(instance(), deltas, plain), cold,
        context + " plain");
    expect_same_counters(contracted, plain, context);
  };

  // Deepest clients of arm 0 and arm 7 (client ids interleave with the
  // chain internals, so find them through the topology).
  std::vector<NodeId> arm_tips;
  for (NodeId client : tree.client_ids()) arm_tips.push_back(client);
  const NodeId hot = arm_tips[2];    // arm 0's deepest client
  const NodeId frozen = arm_tips[23];  // deep inside a different arm

  contracted_solver->solve_incremental(instance(), {}, contracted);
  plain_solver->solve_incremental(instance(), {}, plain);

  // Prime the touched-set tracking, then stay on arm 0: a contraction
  // builds and every other arm seals.
  step({ScenarioDelta::set_requests(hot, 3)}, "prime");
  EXPECT_EQ(contracted.stats().subtrees_sealed, 0u);
  step({ScenarioDelta::set_requests(hot, 4)}, "seal");
  const std::uint64_t sealed_first = contracted.stats().subtrees_sealed;
  EXPECT_GT(sealed_first, 0u);
  EXPECT_GT(contracted.stats().sealed_cells_injected, 0u);
  step({ScenarioDelta::set_requests(hot, 2)}, "reuse");
  // Reuse injects nothing new.
  EXPECT_EQ(contracted.stats().subtrees_sealed, sealed_first);

  // A delta inside a sealed arm: map_deltas refuses, so the contraction
  // unseals (decontracts) and a fresh one builds around BOTH hot paths —
  // one fewer arm sealed, still bit-identical to the twin.
  step({ScenarioDelta::set_requests(frozen, 5)}, "unseal");
  const std::uint64_t sealed_second = contracted.stats().subtrees_sealed;
  EXPECT_GT(sealed_second, sealed_first);

  // Staying on the newly hot arm reuses the rebuilt map.
  step({ScenarioDelta::set_requests(frozen, 1)}, "reseal");
  EXPECT_EQ(contracted.stats().subtrees_sealed, sealed_second);

  // A delta landing exactly on a sealed-subtree ROOT (pre toggle on an
  // untouched arm's head) also unseals.
  const NodeId other_head = tree.topology().internal_children(tree.root())[4];
  step({ScenarioDelta::set_pre_existing(other_head, 1)}, "sealed-root edit");
}

}  // namespace
}  // namespace treeplace
