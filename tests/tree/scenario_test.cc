// Invariants of the Scenario overlay: fork independence, incremental
// client-mass/total-request maintenance, pre-existing bookkeeping.
#include "tree/scenario.h"

#include <gtest/gtest.h>

#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "support/prng.h"
#include "tree/tree.h"

namespace treeplace {
namespace {

/// Recomputes the aggregates the Scenario maintains incrementally.
RequestCount naive_client_mass(const Topology& topo, const Scenario& scen,
                               NodeId j) {
  RequestCount sum = 0;
  for (NodeId c : topo.children(j)) {
    if (topo.is_client(c)) sum += scen.requests(c);
  }
  return sum;
}

RequestCount naive_total(const Topology& topo, const Scenario& scen) {
  RequestCount sum = 0;
  for (NodeId c : topo.client_ids()) sum += scen.requests(c);
  return sum;
}

Tree make_tree(std::uint64_t seed) {
  TreeGenConfig config;
  config.num_internal = 30;
  config.client_probability = 0.8;
  return generate_tree(config, seed, /*index=*/0);
}

TEST(ScenarioTest, AggregatesMatchNaiveRecomputationAfterUpdates) {
  Tree tree = make_tree(21);
  const Topology& topo = tree.topology();
  Scenario& scen = tree.scenario();

  EXPECT_EQ(scen.total_requests(), naive_total(topo, scen));
  for (NodeId j : topo.internal_ids()) {
    EXPECT_EQ(scen.client_mass(j), naive_client_mass(topo, scen, j));
  }

  // Point updates keep every aggregate exact (including lowering volumes,
  // which exercises the subtract side of the incremental update).
  Xoshiro256 rng = make_rng(21, 0, RngStream::kWorkloadUpdate);
  for (NodeId c : topo.client_ids()) {
    scen.set_requests(c, static_cast<RequestCount>(rng.uniform(0, 9)));
    EXPECT_EQ(scen.total_requests(), naive_total(topo, scen));
  }
  for (NodeId j : topo.internal_ids()) {
    EXPECT_EQ(scen.client_mass(j), naive_client_mass(topo, scen, j));
  }

  // Bulk redraw goes through the same incremental path.
  redraw_requests(scen, 1, 6, rng);
  EXPECT_EQ(scen.total_requests(), naive_total(topo, scen));
  for (NodeId j : topo.internal_ids()) {
    EXPECT_EQ(scen.client_mass(j), naive_client_mass(topo, scen, j));
  }
}

TEST(ScenarioTest, ForkedScenariosAreIndependent) {
  Tree tree = make_tree(22);
  const Topology& topo = tree.topology();
  Scenario base = tree.scenario();

  Scenario fork = base;  // the fork: a plain copy over the same topology
  ASSERT_EQ(fork.topology_ptr().get(), base.topology_ptr().get());

  const NodeId client = topo.client_ids().front();
  const RequestCount before = base.requests(client);
  fork.set_requests(client, before + 17);
  EXPECT_EQ(base.requests(client), before);
  EXPECT_EQ(fork.requests(client), before + 17);
  EXPECT_EQ(fork.total_requests(), base.total_requests() + 17);

  Xoshiro256 rng = make_rng(22, 0, RngStream::kPreExisting);
  assign_random_pre_existing(fork, 5, rng);
  EXPECT_EQ(fork.num_pre_existing(), 5u);
  EXPECT_EQ(base.num_pre_existing(), 0u);
  for (NodeId id : fork.pre_existing_nodes()) {
    EXPECT_FALSE(base.pre_existing(id));
  }
}

TEST(ScenarioTest, PreExistingBookkeeping) {
  Tree tree = make_tree(23);
  Scenario& scen = tree.scenario();
  const NodeId a = tree.internal_ids()[1];
  const NodeId b = tree.internal_ids()[2];

  scen.set_pre_existing(a, 1);
  scen.set_pre_existing(b, 0);
  EXPECT_EQ(scen.num_pre_existing(), 2u);
  scen.set_pre_existing(a, 0);  // idempotent count, mode update
  EXPECT_EQ(scen.num_pre_existing(), 2u);
  EXPECT_EQ(scen.original_mode(a), 0);
  scen.clear_pre_existing(a);
  EXPECT_EQ(scen.num_pre_existing(), 1u);
  EXPECT_EQ(scen.original_mode(a), -1);
  scen.clear_all_pre_existing();
  EXPECT_EQ(scen.num_pre_existing(), 0u);
  EXPECT_TRUE(scen.pre_existing_nodes().empty());
}

TEST(ScenarioTest, BlankScenarioOverSharedTopology) {
  const Tree tree = make_tree(24);
  Scenario blank(tree.topology_ptr());
  EXPECT_EQ(blank.total_requests(), 0u);
  EXPECT_EQ(blank.num_pre_existing(), 0u);
  for (NodeId j : tree.internal_ids()) {
    EXPECT_EQ(blank.client_mass(j), 0u);
  }
  // The original tree's scenario is untouched.
  EXPECT_GT(tree.total_requests(), 0u);
}

}  // namespace
}  // namespace treeplace
