// Invariants of the Scenario overlay: fork independence, incremental
// client-mass/total-request maintenance, pre-existing bookkeeping, and the
// warm-start audit helpers (aggregates_consistent, touched_internal_nodes).
#include "tree/scenario.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "support/prng.h"
#include "tree/scenario_delta.h"
#include "tree/tree.h"

namespace treeplace {
namespace {

/// Recomputes the aggregates the Scenario maintains incrementally.
RequestCount naive_client_mass(const Topology& topo, const Scenario& scen,
                               NodeId j) {
  RequestCount sum = 0;
  for (NodeId c : topo.children(j)) {
    if (topo.is_client(c)) sum += scen.requests(c);
  }
  return sum;
}

RequestCount naive_total(const Topology& topo, const Scenario& scen) {
  RequestCount sum = 0;
  for (NodeId c : topo.client_ids()) sum += scen.requests(c);
  return sum;
}

Tree make_tree(std::uint64_t seed) {
  TreeGenConfig config;
  config.num_internal = 30;
  config.client_probability = 0.8;
  return generate_tree(config, seed, /*index=*/0);
}

TEST(ScenarioTest, AggregatesMatchNaiveRecomputationAfterUpdates) {
  Tree tree = make_tree(21);
  const Topology& topo = tree.topology();
  Scenario& scen = tree.scenario();

  EXPECT_EQ(scen.total_requests(), naive_total(topo, scen));
  for (NodeId j : topo.internal_ids()) {
    EXPECT_EQ(scen.client_mass(j), naive_client_mass(topo, scen, j));
  }

  // Point updates keep every aggregate exact (including lowering volumes,
  // which exercises the subtract side of the incremental update).
  Xoshiro256 rng = make_rng(21, 0, RngStream::kWorkloadUpdate);
  for (NodeId c : topo.client_ids()) {
    scen.set_requests(c, static_cast<RequestCount>(rng.uniform(0, 9)));
    EXPECT_EQ(scen.total_requests(), naive_total(topo, scen));
  }
  for (NodeId j : topo.internal_ids()) {
    EXPECT_EQ(scen.client_mass(j), naive_client_mass(topo, scen, j));
  }

  // Bulk redraw goes through the same incremental path.
  redraw_requests(scen, 1, 6, rng);
  EXPECT_EQ(scen.total_requests(), naive_total(topo, scen));
  for (NodeId j : topo.internal_ids()) {
    EXPECT_EQ(scen.client_mass(j), naive_client_mass(topo, scen, j));
  }
}

TEST(ScenarioTest, ForkedScenariosAreIndependent) {
  Tree tree = make_tree(22);
  const Topology& topo = tree.topology();
  Scenario base = tree.scenario();

  Scenario fork = base;  // the fork: a plain copy over the same topology
  ASSERT_EQ(fork.topology_ptr().get(), base.topology_ptr().get());

  const NodeId client = topo.client_ids().front();
  const RequestCount before = base.requests(client);
  fork.set_requests(client, before + 17);
  EXPECT_EQ(base.requests(client), before);
  EXPECT_EQ(fork.requests(client), before + 17);
  EXPECT_EQ(fork.total_requests(), base.total_requests() + 17);

  Xoshiro256 rng = make_rng(22, 0, RngStream::kPreExisting);
  assign_random_pre_existing(fork, 5, rng);
  EXPECT_EQ(fork.num_pre_existing(), 5u);
  EXPECT_EQ(base.num_pre_existing(), 0u);
  for (NodeId id : fork.pre_existing_nodes()) {
    EXPECT_FALSE(base.pre_existing(id));
  }
}

TEST(ScenarioTest, PreExistingBookkeeping) {
  Tree tree = make_tree(23);
  Scenario& scen = tree.scenario();
  const NodeId a = tree.internal_ids()[1];
  const NodeId b = tree.internal_ids()[2];

  scen.set_pre_existing(a, 1);
  scen.set_pre_existing(b, 0);
  EXPECT_EQ(scen.num_pre_existing(), 2u);
  scen.set_pre_existing(a, 0);  // idempotent count, mode update
  EXPECT_EQ(scen.num_pre_existing(), 2u);
  EXPECT_EQ(scen.original_mode(a), 0);
  scen.clear_pre_existing(a);
  EXPECT_EQ(scen.num_pre_existing(), 1u);
  EXPECT_EQ(scen.original_mode(a), -1);
  scen.clear_all_pre_existing();
  EXPECT_EQ(scen.num_pre_existing(), 0u);
  EXPECT_TRUE(scen.pre_existing_nodes().empty());
}

TEST(ScenarioTest, BlankScenarioOverSharedTopology) {
  const Tree tree = make_tree(24);
  Scenario blank(tree.topology_ptr());
  EXPECT_EQ(blank.total_requests(), 0u);
  EXPECT_EQ(blank.num_pre_existing(), 0u);
  for (NodeId j : tree.internal_ids()) {
    EXPECT_EQ(blank.client_mass(j), 0u);
  }
  // The original tree's scenario is untouched.
  EXPECT_GT(tree.total_requests(), 0u);
}

/// Draws one random delta against `topo` (clients for R, internals for
/// E/X, the occasional Z).
ScenarioDelta random_delta(const Topology& topo, Xoshiro256& rng) {
  switch (rng.uniform(0, 9)) {
    case 0:
      return ScenarioDelta::clear_all_pre();
    case 1:
    case 2: {
      const auto& ids = topo.internal_ids();
      return ScenarioDelta::set_pre_existing(
          ids[rng.uniform(0, ids.size() - 1)],
          static_cast<int>(rng.uniform(0, 1)));
    }
    case 3: {
      const auto& ids = topo.internal_ids();
      return ScenarioDelta::clear_pre_existing(
          ids[rng.uniform(0, ids.size() - 1)]);
    }
    default: {
      const auto& ids = topo.client_ids();
      return ScenarioDelta::set_requests(ids[rng.uniform(0, ids.size() - 1)],
                                         rng.uniform(0, 9));
    }
  }
}

TEST(ScenarioTest, AggregatesConsistentAfterRandomDeltaSequences) {
  const Tree tree = make_tree(31);
  for (std::uint64_t round = 0; round < 8; ++round) {
    Scenario scen = tree.scenario();  // fork
    Xoshiro256 rng = make_rng(31, round, RngStream::kWorkloadUpdate);
    for (int step = 0; step < 40; ++step) {
      apply_delta(scen, random_delta(tree.topology(), rng));
      ASSERT_TRUE(scen.aggregates_consistent())
          << "round " << round << " step " << step;
      // The incremental aggregates also match the naive recompute exactly.
      for (NodeId j : tree.internal_ids()) {
        ASSERT_EQ(scen.client_mass(j),
                  naive_client_mass(tree.topology(), scen, j));
      }
      ASSERT_EQ(scen.total_requests(), naive_total(tree.topology(), scen));
    }
  }
}

TEST(ScenarioTest, TouchedInternalNodesMatchesBruteForceDiff) {
  const Tree tree = make_tree(32);
  const Topology& topo = tree.topology();
  Scenario base = tree.scenario();
  Xoshiro256 pre_rng = make_rng(32, 0, RngStream::kPreExisting);
  assign_random_pre_existing(base, 6, pre_rng, /*num_modes=*/2);

  Xoshiro256 rng = make_rng(32, 1, RngStream::kWorkloadUpdate);
  for (int step = 0; step < 30; ++step) {
    Scenario edited = base;  // fork
    const int edits = 1 + static_cast<int>(rng.uniform(0, 3));
    for (int e = 0; e < edits; ++e) {
      apply_delta(edited, random_delta(topo, rng));
    }
    const std::vector<NodeId> touched = edited.touched_internal_nodes(base);
    // Brute force: an internal node is touched iff any solver-visible
    // input differs.
    std::vector<NodeId> expected;
    for (NodeId j : topo.internal_ids()) {
      const bool differs =
          edited.client_mass(j) != base.client_mass(j) ||
          edited.pre_existing(j) != base.pre_existing(j) ||
          (edited.pre_existing(j) &&
           edited.original_mode(j) != base.original_mode(j));
      if (differs) expected.push_back(j);
    }
    ASSERT_EQ(touched, expected) << "step " << step;
    ASSERT_TRUE(std::is_sorted(touched.begin(), touched.end()));
    // Symmetry: the diff reads the same from either side.
    ASSERT_EQ(base.touched_internal_nodes(edited).size(), touched.size());
  }
  // No edits -> no touched nodes.
  EXPECT_TRUE(base.touched_internal_nodes(base).empty());
}

}  // namespace
}  // namespace treeplace
