#include "tree/tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/check.h"

namespace treeplace {
namespace {

/// r -> {a, c1}, a -> {b, c2}; c1, c2 clients.
struct SmallTree {
  Tree tree;
  NodeId r, a, b, c1, c2;
};

SmallTree make_small() {
  TreeBuilder builder;
  SmallTree s;
  s.r = builder.add_root();
  s.a = builder.add_internal(s.r);
  s.c1 = builder.add_client(s.r, 3);
  s.b = builder.add_internal(s.a);
  s.c2 = builder.add_client(s.a, 5);
  s.tree = std::move(builder).build();
  return s;
}

TEST(TreeBuilderTest, BuildsSmallTree) {
  SmallTree s = make_small();
  EXPECT_EQ(s.tree.num_nodes(), 5u);
  EXPECT_EQ(s.tree.num_internal(), 3u);
  EXPECT_EQ(s.tree.num_clients(), 2u);
  EXPECT_EQ(s.tree.root(), s.r);
}

TEST(TreeBuilderTest, ParentChildRelations) {
  SmallTree s = make_small();
  EXPECT_EQ(s.tree.parent(s.r), kNoNode);
  EXPECT_EQ(s.tree.parent(s.a), s.r);
  EXPECT_EQ(s.tree.parent(s.b), s.a);
  EXPECT_EQ(s.tree.parent(s.c1), s.r);
  ASSERT_EQ(s.tree.children(s.r).size(), 2u);
  ASSERT_EQ(s.tree.internal_children(s.r).size(), 1u);
  EXPECT_EQ(s.tree.internal_children(s.r)[0], s.a);
}

TEST(TreeBuilderTest, KindsAreTracked) {
  SmallTree s = make_small();
  EXPECT_TRUE(s.tree.is_internal(s.r));
  EXPECT_TRUE(s.tree.is_internal(s.a));
  EXPECT_TRUE(s.tree.is_internal(s.b));
  EXPECT_TRUE(s.tree.is_client(s.c1));
  EXPECT_TRUE(s.tree.is_client(s.c2));
}

TEST(TreeBuilderTest, RootMustBeFirst) {
  TreeBuilder builder;
  EXPECT_THROW(builder.add_internal(0), CheckError);
  EXPECT_THROW(builder.add_client(0, 1), CheckError);
}

TEST(TreeBuilderTest, SingleRootOnly) {
  TreeBuilder builder;
  builder.add_root();
  EXPECT_THROW(builder.add_root(), CheckError);
}

TEST(TreeBuilderTest, ClientCannotBeParent) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId c = builder.add_client(r, 1);
  EXPECT_THROW(builder.add_internal(c), CheckError);
  EXPECT_THROW(builder.add_client(c, 1), CheckError);
}

TEST(TreeBuilderTest, EmptyBuildThrows) {
  TreeBuilder builder;
  EXPECT_THROW(std::move(builder).build(), CheckError);
}

TEST(TreeBuilderTest, SingleNodeTree) {
  TreeBuilder builder;
  builder.add_root();
  const Tree t = std::move(builder).build();
  EXPECT_EQ(t.num_internal(), 1u);
  EXPECT_EQ(t.num_clients(), 0u);
  EXPECT_EQ(t.internal_post_order().size(), 1u);
}

TEST(TreeTest, RequestsReadWrite) {
  SmallTree s = make_small();
  EXPECT_EQ(s.tree.requests(s.c1), 3u);
  s.tree.set_requests(s.c1, 9);
  EXPECT_EQ(s.tree.requests(s.c1), 9u);
}

TEST(TreeTest, RequestsOnInternalThrows) {
  SmallTree s = make_small();
  EXPECT_THROW(s.tree.requests(s.a), CheckError);
  EXPECT_THROW(s.tree.set_requests(s.a, 1), CheckError);
}

TEST(TreeTest, ClientMass) {
  SmallTree s = make_small();
  EXPECT_EQ(s.tree.client_mass(s.r), 3u);
  EXPECT_EQ(s.tree.client_mass(s.a), 5u);
  EXPECT_EQ(s.tree.client_mass(s.b), 0u);
  EXPECT_EQ(s.tree.total_requests(), 8u);
}

TEST(TreeTest, PreExistingFlags) {
  SmallTree s = make_small();
  EXPECT_EQ(s.tree.num_pre_existing(), 0u);
  s.tree.set_pre_existing(s.a, 1);
  EXPECT_TRUE(s.tree.pre_existing(s.a));
  EXPECT_EQ(s.tree.original_mode(s.a), 1);
  EXPECT_EQ(s.tree.num_pre_existing(), 1u);
  s.tree.set_pre_existing(s.a, 0);  // idempotent count
  EXPECT_EQ(s.tree.num_pre_existing(), 1u);
  s.tree.clear_pre_existing(s.a);
  EXPECT_FALSE(s.tree.pre_existing(s.a));
  EXPECT_EQ(s.tree.num_pre_existing(), 0u);
}

TEST(TreeTest, PreExistingOnClientThrows) {
  SmallTree s = make_small();
  EXPECT_THROW(s.tree.set_pre_existing(s.c1), CheckError);
}

TEST(TreeTest, ClearAllPreExisting) {
  SmallTree s = make_small();
  s.tree.set_pre_existing(s.a);
  s.tree.set_pre_existing(s.b);
  s.tree.clear_all_pre_existing();
  EXPECT_EQ(s.tree.num_pre_existing(), 0u);
  EXPECT_TRUE(s.tree.pre_existing_nodes().empty());
}

TEST(TreeTest, PreExistingNodesSorted) {
  SmallTree s = make_small();
  s.tree.set_pre_existing(s.b);
  s.tree.set_pre_existing(s.r);
  const auto nodes = s.tree.pre_existing_nodes();
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
}

TEST(TreeTest, PostOrderChildrenBeforeParents) {
  SmallTree s = make_small();
  const auto& order = s.tree.internal_post_order();
  ASSERT_EQ(order.size(), 3u);
  auto pos = [&](NodeId id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(s.b), pos(s.a));
  EXPECT_LT(pos(s.a), pos(s.r));
}

TEST(TreeTest, InternalIndexIsDense) {
  SmallTree s = make_small();
  std::vector<bool> seen(s.tree.num_internal(), false);
  for (NodeId id : s.tree.internal_ids()) {
    const std::size_t idx = s.tree.internal_index(id);
    ASSERT_LT(idx, s.tree.num_internal());
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(TreeTest, InternalIndexOnClientThrows) {
  SmallTree s = make_small();
  EXPECT_THROW(s.tree.internal_index(s.c1), CheckError);
}

TEST(TreeTest, AncestorOrSelf) {
  SmallTree s = make_small();
  EXPECT_TRUE(s.tree.is_ancestor_or_self(s.r, s.b));
  EXPECT_TRUE(s.tree.is_ancestor_or_self(s.a, s.a));
  EXPECT_TRUE(s.tree.is_ancestor_or_self(s.a, s.c2));
  EXPECT_FALSE(s.tree.is_ancestor_or_self(s.b, s.a));
  EXPECT_FALSE(s.tree.is_ancestor_or_self(s.a, s.c1));
}

TEST(TreeTest, DeepChainPostOrder) {
  TreeBuilder builder;
  NodeId cur = builder.add_root();
  std::vector<NodeId> chain{cur};
  for (int i = 0; i < 200; ++i) {
    cur = builder.add_internal(cur);
    chain.push_back(cur);
  }
  const Tree t = std::move(builder).build();
  const auto& order = t.internal_post_order();
  ASSERT_EQ(order.size(), chain.size());
  // Deepest first, root last.
  EXPECT_EQ(order.front(), chain.back());
  EXPECT_EQ(order.back(), chain.front());
}

}  // namespace
}  // namespace treeplace
