#include "tree/io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/tree_gen.h"
#include "support/check.h"

namespace treeplace {
namespace {

Tree make_tree() {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId a = builder.add_internal(r);
  builder.add_client(a, 7);
  builder.add_client(r, 2);
  builder.set_pre_existing(a, 1);
  return std::move(builder).build();
}

TEST(TreeIoTest, SerializeHasHeaderAndAllNodes) {
  const std::string text = serialize_tree(make_tree());
  EXPECT_EQ(text.rfind("treeplace-tree v1", 0), 0u);
  EXPECT_NE(text.find("I 0 -1"), std::string::npos);
  EXPECT_NE(text.find("I 1 0 1 1"), std::string::npos);  // pre, mode 1
  EXPECT_NE(text.find("C 2 1 7"), std::string::npos);
}

TEST(TreeIoTest, RoundTripPreservesEverything) {
  const Tree original = make_tree();
  const Tree parsed = parse_tree(serialize_tree(original));
  ASSERT_EQ(parsed.num_nodes(), original.num_nodes());
  for (std::size_t i = 0; i < original.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    EXPECT_EQ(parsed.kind(id), original.kind(id));
    EXPECT_EQ(parsed.parent(id), original.parent(id));
    if (original.is_client(id)) {
      EXPECT_EQ(parsed.requests(id), original.requests(id));
    } else {
      EXPECT_EQ(parsed.pre_existing(id), original.pre_existing(id));
      EXPECT_EQ(parsed.original_mode(id), original.original_mode(id));
    }
  }
}

TEST(TreeIoTest, RoundTripRandomTrees) {
  for (std::uint64_t t = 0; t < 10; ++t) {
    TreeGenConfig config;
    config.num_internal = 40;
    const Tree original = generate_tree(config, /*seed=*/7, t);
    const Tree parsed = parse_tree(serialize_tree(original));
    EXPECT_EQ(serialize_tree(parsed), serialize_tree(original));
  }
}

TEST(TreeIoTest, BadHeaderThrows) {
  EXPECT_THROW(parse_tree("not a tree\n"), CheckError);
}

TEST(TreeIoTest, MalformedLineThrows) {
  EXPECT_THROW(parse_tree("treeplace-tree v1\nI zero\n"), CheckError);
}

TEST(TreeIoTest, NonConsecutiveIdsThrow) {
  EXPECT_THROW(parse_tree("treeplace-tree v1\nI 5 -1 0 -1\n"), CheckError);
}

TEST(TreeIoTest, UnknownTagThrows) {
  EXPECT_THROW(parse_tree("treeplace-tree v1\nX 0 -1\n"), CheckError);
}

TEST(TreeIoTest, CommentsAndBlankLinesIgnored) {
  const Tree t = parse_tree(
      "treeplace-tree v1\n"
      "# a comment\n"
      "\n"
      "I 0 -1 0 -1\n"
      "C 1 0 4\n");
  EXPECT_EQ(t.num_internal(), 1u);
  EXPECT_EQ(t.total_requests(), 4u);
}

TEST(TreeStreamReaderTest, ReadsConcatenatedTrees) {
  TreeGenConfig config;
  config.num_internal = 12;
  const Tree a = generate_tree(config, /*seed=*/9, 0);
  const Tree b = generate_tree(config, /*seed=*/9, 1);
  // Plain concatenation (`cat a.txt b.txt`): the second header terminates
  // the first tree.
  std::istringstream is(serialize_tree(a) + serialize_tree(b));
  TreeStreamReader reader(is);
  const auto first = reader.next();
  const auto second = reader.next();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(serialize_tree(*first), serialize_tree(a));
  EXPECT_EQ(serialize_tree(*second), serialize_tree(b));
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.trees_read(), 2u);
}

TEST(TreeStreamReaderTest, BlankLinesAndCommentsIgnoredEverywhere) {
  // Interior blanks/comments are part of the v1 format (parse_tree accepts
  // them); only a new header may terminate a tree.
  std::istringstream is(
      "# leading comment\n"
      "\n"
      "treeplace-tree v1\n"
      "I 0 -1 0 -1\n"
      "\n"
      "# interior comment\n"
      "C 1 0 4\n"
      "\n"
      "# between trees\n"
      "treeplace-tree v1\n"
      "I 0 -1 1 0\n"
      "\n");
  TreeStreamReader reader(is);
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->num_nodes(), 2u);  // the interior blank did not split it
  EXPECT_EQ(first->total_requests(), 4u);
  const auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->pre_existing(second->root()));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(TreeStreamReaderTest, SingleTreeMatchesParseTree) {
  const Tree original = make_tree();
  std::istringstream is(serialize_tree(original));
  TreeStreamReader reader(is);
  const auto tree = reader.next();
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(serialize_tree(*tree), serialize_tree(original));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(TreeStreamReaderTest, BadHeaderThrows) {
  std::istringstream is("not a tree\n");
  TreeStreamReader reader(is);
  EXPECT_THROW(reader.next(), CheckError);
}

TEST(TreeIoTest, CrlfLinesParseLikeLf) {
  const Tree t = parse_tree(
      "treeplace-tree v1\r\n"
      "I 0 -1 0 -1\r\n"
      "C 1 0 4\r\n");
  EXPECT_EQ(t.num_internal(), 1u);
  EXPECT_EQ(t.total_requests(), 4u);
}

TEST(TreeIoTest, OversizedLineThrows) {
  // An unterminated megabyte-scale line (binary junk fed as a tree) is
  // rejected up front instead of being buffered and mis-parsed.
  EXPECT_THROW(parse_tree("treeplace-tree v1\nI 0 -1 0 -1 # " +
                          std::string(2u << 20, 'x') + "\n"),
               CheckError);
}

TEST(TreeStreamReaderTest, TruncatedNodeLineThrows) {
  std::istringstream is("treeplace-tree v1\nI 0 -1 0 -1\nC 1 0\n");
  TreeStreamReader reader(is);
  EXPECT_THROW(reader.next(), CheckError);
}

TEST(TreeIoTest, DotContainsAllNodesAndEdges) {
  const std::string dot = to_dot(make_tree());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // pre-existing
  EXPECT_NE(dot.find("shape=box"), std::string::npos);      // clients
}

}  // namespace
}  // namespace treeplace
