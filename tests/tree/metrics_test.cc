#include "tree/metrics.h"

#include <gtest/gtest.h>

#include "gen/tree_gen.h"

namespace treeplace {
namespace {

TEST(TreeMetricsTest, SingleNode) {
  TreeBuilder builder;
  builder.add_root();
  const TreeMetrics m = compute_metrics(std::move(builder).build());
  EXPECT_EQ(m.num_internal, 1u);
  EXPECT_EQ(m.num_clients, 0u);
  EXPECT_EQ(m.depth, 1u);
  EXPECT_EQ(m.max_fanout, 0u);
  EXPECT_EQ(m.total_requests, 0u);
}

TEST(TreeMetricsTest, SmallTreeValues) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  const NodeId a = builder.add_internal(r);
  builder.add_internal(r);
  builder.add_internal(a);
  builder.add_client(a, 6);
  builder.add_client(r, 2);
  builder.set_pre_existing(a);
  const TreeMetrics m = compute_metrics(std::move(builder).build());
  EXPECT_EQ(m.num_internal, 4u);
  EXPECT_EQ(m.num_clients, 2u);
  EXPECT_EQ(m.num_pre_existing, 1u);
  EXPECT_EQ(m.depth, 3u);
  EXPECT_EQ(m.max_fanout, 2u);
  EXPECT_EQ(m.min_fanout, 1u);
  EXPECT_DOUBLE_EQ(m.mean_fanout, 1.5);
  EXPECT_EQ(m.total_requests, 8u);
  EXPECT_EQ(m.max_client_requests, 6u);
}

TEST(TreeMetricsTest, FatTreesAreShallow) {
  TreeGenConfig config;
  config.num_internal = 100;
  config.shape = kFatShape;
  const Tree t = generate_tree(config, 1, 0);
  const TreeMetrics m = compute_metrics(t);
  EXPECT_EQ(m.num_internal, 100u);
  EXPECT_LE(m.depth, 4u);  // 6-9 children: ~3 levels for 100 nodes
}

TEST(TreeMetricsTest, HighTreesAreDeeper) {
  TreeGenConfig fat;
  fat.num_internal = 100;
  fat.shape = kFatShape;
  TreeGenConfig high = fat;
  high.shape = kHighShape;
  const TreeMetrics m_fat = compute_metrics(generate_tree(fat, 1, 0));
  const TreeMetrics m_high = compute_metrics(generate_tree(high, 1, 0));
  EXPECT_GT(m_high.depth, m_fat.depth);
}

}  // namespace
}  // namespace treeplace
