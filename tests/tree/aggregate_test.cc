// Exactness gate for hierarchical client aggregation (tree/aggregate.h).
//
// The contract is bit-identity: collapsing leaf client populations into one
// weighted aggregate client per attachment point must leave every solver
// observable unchanged — objective value, power, placement (over internal
// nodes, which survive 1:1), feasibility and the frontier — across all
// three DP engines, serial and threaded, cold and warm.  The fuzz drives
// random delta streams through both the original and the aggregated
// serving path (deltas rewritten by map_deltas) and compares after every
// step.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "solver/registry.h"
#include "solver/session.h"
#include "support/prng.h"
#include "tree/aggregate.h"
#include "tree/scenario_delta.h"

namespace treeplace {
namespace {

Tree make_fuzz_tree(std::uint64_t seed, std::uint64_t index,
                    int num_internal) {
  TreeGenConfig config;
  config.num_internal = num_internal;
  config.shape = TreeShape{2, 4};
  config.client_probability = 0.8;
  config.min_requests = 1;
  config.max_requests = 5;
  Tree tree = generate_tree(config, seed, index);
  Xoshiro256 pre_rng = make_rng(seed, index, RngStream::kPreExisting);
  assign_random_pre_existing(tree, num_internal / 4, pre_rng,
                             /*num_modes=*/2);
  return tree;
}

/// Client-volume and pre-existing edits over the ORIGINAL tree — the
/// user-level vocabulary the aggregation must fold correctly.
std::vector<ScenarioDelta> random_step(const Topology& topo, Xoshiro256& rng) {
  std::vector<ScenarioDelta> deltas;
  const int edits = 1 + static_cast<int>(rng.uniform(0, 4));
  for (int e = 0; e < edits; ++e) {
    switch (rng.uniform(0, 7)) {
      case 0: {
        const auto& ids = topo.internal_ids();
        deltas.push_back(ScenarioDelta::set_pre_existing(
            ids[rng.uniform(0, ids.size() - 1)],
            static_cast<int>(rng.uniform(0, 1))));
        break;
      }
      case 1: {
        const auto& ids = topo.internal_ids();
        deltas.push_back(ScenarioDelta::clear_pre_existing(
            ids[rng.uniform(0, ids.size() - 1)]));
        break;
      }
      default: {
        const auto& ids = topo.client_ids();
        deltas.push_back(ScenarioDelta::set_requests(
            ids[rng.uniform(0, ids.size() - 1)], rng.uniform(0, 5)));
        break;
      }
    }
  }
  return deltas;
}

void expect_equivalent(const Solution& orig, const Solution& agg,
                       const Aggregation& aggregation,
                       const std::string& context) {
  ASSERT_EQ(orig.feasible, agg.feasible) << context;
  EXPECT_EQ(orig.budget_met, agg.budget_met) << context;
  EXPECT_EQ(orig.placement, aggregation.expand(agg.placement)) << context;
  if (!orig.feasible) return;
  EXPECT_DOUBLE_EQ(orig.breakdown.cost, agg.breakdown.cost) << context;
  EXPECT_DOUBLE_EQ(orig.power, agg.power) << context;
  EXPECT_EQ(orig.breakdown.servers, agg.breakdown.servers) << context;
  EXPECT_EQ(orig.breakdown.reused, agg.breakdown.reused) << context;
  ASSERT_EQ(orig.frontier.size(), agg.frontier.size()) << context;
  for (std::size_t i = 0; i < orig.frontier.size(); ++i) {
    EXPECT_DOUBLE_EQ(orig.frontier[i].cost, agg.frontier[i].cost) << context;
    EXPECT_DOUBLE_EQ(orig.frontier[i].power, agg.frontier[i].power)
        << context;
    EXPECT_EQ(orig.frontier[i].placement,
              aggregation.expand(agg.frontier[i].placement))
        << context;
  }
}

void run_fuzz(const std::string& algo, int solver_threads) {
  const bool single_mode = algo == "update-dp";
  const ModeSet modes =
      single_mode ? ModeSet::single(10) : ModeSet({5, 10}, 12.5, 3.0);
  const CostModel costs =
      single_mode ? CostModel::simple(0.1, 0.01)
                  : CostModel::uniform(modes.count(), 0.1, 0.01, 0.001, 0.001);

  const auto orig_solver = make_solver(algo);
  const auto agg_solver = make_solver(algo);
  orig_solver->set_options(Solver::Options{solver_threads});
  agg_solver->set_options(Solver::Options{solver_threads});

  for (std::uint64_t index = 0; index < 2; ++index) {
    Tree tree = make_fuzz_tree(91, index, 24);
    const Aggregation aggregation(tree.topology_ptr());
    Scenario agg_scenario = aggregation.aggregate(tree.scenario());

    SolveSession orig_session(tree.topology_ptr());
    SolveSession agg_session(aggregation.aggregated());
    Xoshiro256 rng = make_rng(91, index, RngStream::kWorkloadUpdate);

    const auto make_instances = [&] {
      return std::pair<Instance, Instance>{
          single_mode
              ? Instance::single_mode(tree.topology_ptr(), tree.scenario(),
                                      10, 0.1, 0.01)
              : Instance{tree.topology_ptr(), tree.scenario(), modes, costs,
                         std::nullopt},
          single_mode
              ? Instance::single_mode(aggregation.aggregated(), agg_scenario,
                                      10, 0.1, 0.01)
              : Instance{aggregation.aggregated(), agg_scenario, modes, costs,
                         std::nullopt}};
    };

    for (int step = 0; step < 10; ++step) {
      std::vector<ScenarioDelta> deltas;
      if (step > 0) {
        deltas = random_step(tree.topology(), rng);
        for (const ScenarioDelta& delta : deltas) {
          apply_delta(tree.scenario(), delta);
        }
      }
      const std::vector<ScenarioDelta> agg_deltas =
          aggregation.map_deltas(tree.scenario(), deltas);
      for (const ScenarioDelta& delta : agg_deltas) {
        apply_delta(agg_scenario, delta);
      }
      const auto [orig_instance, agg_instance] = make_instances();
      const Solution orig =
          orig_solver->solve_incremental(orig_instance, deltas, orig_session);
      const Solution agg = agg_solver->solve_incremental(
          agg_instance, agg_deltas, agg_session);
      expect_equivalent(orig, agg, aggregation,
                        algo + " threads=" + std::to_string(solver_threads) +
                            " tree=" + std::to_string(index) + " step=" +
                            std::to_string(step));
    }
  }
}

TEST(AggregateTest, PowerSymBitIdenticalSerial) { run_fuzz("power-sym", 1); }
TEST(AggregateTest, PowerSymBitIdenticalThreaded) {
  run_fuzz("power-sym", 4);
}
TEST(AggregateTest, PowerExactBitIdenticalSerial) {
  run_fuzz("power-exact", 1);
}
TEST(AggregateTest, PowerExactBitIdenticalThreaded) {
  run_fuzz("power-exact", 4);
}
TEST(AggregateTest, UpdateDpBitIdenticalSerial) { run_fuzz("update-dp", 1); }
TEST(AggregateTest, UpdateDpBitIdenticalThreaded) {
  run_fuzz("update-dp", 4);
}

TEST(AggregateTest, AggregatedScenarioMatchesClientMasses) {
  const Tree tree = make_fuzz_tree(13, 0, 20);
  const Aggregation aggregation(tree.topology_ptr());
  const Scenario agg = aggregation.aggregate(tree.scenario());

  EXPECT_EQ(agg.total_requests(), tree.total_requests());
  for (NodeId node : tree.internal_ids()) {
    const NodeId client = aggregation.aggregate_client(node);
    // Internal ids survive 1:1 and masses match attachment point by
    // attachment point.
    const NodeId agg_node = aggregation.to_aggregated(node);
    EXPECT_EQ(aggregation.to_original(agg_node), node);
    EXPECT_EQ(agg.client_mass(agg_node), tree.client_mass(node));
    if (client != kNoNode) {
      EXPECT_EQ(agg.requests(client), tree.client_mass(node));
      EXPECT_EQ(aggregation.to_original(client), node);
    } else {
      EXPECT_EQ(tree.client_mass(node), 0u);
    }
    EXPECT_EQ(agg.pre_existing(agg_node), tree.pre_existing(node));
  }
}

TEST(AggregateTest, PlacementExpansionRoundTripOnSkewTrees) {
  // The million-user shape: many single-user leaves, few attachment
  // points.  Solve the aggregated instance and expand the placement — it
  // must name valid internal nodes of the original topology, and solving
  // the ORIGINAL instance must produce exactly the expanded placement.
  SkewTreeConfig config;
  config.num_internal = 60;
  config.num_users = 4000;
  config.hub_probability = 0.1;
  config.hub_fanout = 12;
  for (std::uint64_t index = 0; index < 2; ++index) {
    Tree tree = generate_skew_tree(config, 29, index);
    ASSERT_EQ(tree.num_clients(), config.num_users);
    const Aggregation aggregation(tree.topology_ptr());
    const Scenario agg_scenario = aggregation.aggregate(tree.scenario());
    // Aggregation pays for attachment points, not users.
    EXPECT_LE(aggregation.aggregated()->num_nodes(),
              2 * tree.num_internal());

    // Capacities sized to the population: a handful of big servers cover
    // the ~12k total requests, so the boxes stay small while the masses
    // exercise the wide-count regime.
    const ModeSet modes({5000, 20000}, 12.5, 3.0);
    const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
    const auto solver = make_solver("power-sym");
    const Solution agg = solver->solve(Instance{
        aggregation.aggregated(), agg_scenario, modes, costs, std::nullopt});
    ASSERT_TRUE(agg.feasible);
    const Placement expanded = aggregation.expand(agg.placement);
    for (NodeId node : expanded.nodes()) {
      EXPECT_TRUE(tree.is_internal(node));
    }
    const Solution orig = solver->solve(Instance{
        tree.topology_ptr(), tree.scenario(), modes, costs, std::nullopt});
    ASSERT_TRUE(orig.feasible);
    EXPECT_EQ(orig.placement, expanded);
    EXPECT_DOUBLE_EQ(orig.breakdown.cost, agg.breakdown.cost);
    EXPECT_DOUBLE_EQ(orig.power, agg.power);
  }
}

TEST(AggregateTest, MapDeltasFoldsBurstsPerAttachmentPoint) {
  // Many users under one attachment point fold into a single R record
  // carrying the parent's final mass.
  SkewTreeConfig config;
  config.num_internal = 30;
  config.num_users = 500;
  Tree tree = generate_skew_tree(config, 7, 0);
  const Aggregation aggregation(tree.topology_ptr());

  // Pick one attachment point with several users.
  NodeId hot = kNoNode;
  for (NodeId node : tree.internal_ids()) {
    int users = 0;
    for (NodeId child : tree.children(node)) {
      if (tree.is_client(child)) ++users;
    }
    if (users >= 3) {
      hot = node;
      break;
    }
  }
  ASSERT_NE(hot, kNoNode);

  std::vector<ScenarioDelta> deltas;
  for (NodeId child : tree.children(hot)) {
    if (!tree.is_client(child)) continue;
    deltas.push_back(
        ScenarioDelta::set_requests(child, tree.requests(child) + 2));
    apply_delta(tree.scenario(), deltas.back());
  }
  ASSERT_GE(deltas.size(), 3u);

  const std::vector<ScenarioDelta> mapped =
      aggregation.map_deltas(tree.scenario(), deltas);
  ASSERT_EQ(mapped.size(), 1u);
  EXPECT_EQ(mapped.front().op, ScenarioDelta::Op::kSetRequests);
  EXPECT_EQ(mapped.front().node, aggregation.aggregate_client(hot));
  EXPECT_EQ(mapped.front().requests, tree.client_mass(hot));
}

}  // namespace
}  // namespace treeplace
