// Invariants of the CSR-flattened immutable Topology: children spans match
// builder insertion order, post-order stability, sharing semantics.
#include "tree/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gen/tree_gen.h"
#include "tree/tree.h"

namespace treeplace {
namespace {

TEST(TopologyTest, CsrChildrenMatchInsertionOrder) {
  TreeBuilder builder;
  const NodeId r = builder.add_root();
  // Interleave clients and internal nodes so the CSR fill has to preserve
  // the mixed insertion order, not just group by kind.
  const NodeId c1 = builder.add_client(r, 3);
  const NodeId a = builder.add_internal(r);
  const NodeId c2 = builder.add_client(r, 5);
  const NodeId b = builder.add_internal(r);
  const NodeId b1 = builder.add_internal(b);
  const NodeId c3 = builder.add_client(b, 1);
  const Tree tree = std::move(builder).build();
  const Topology& topo = tree.topology();

  const std::vector<NodeId> root_kids(topo.children(r).begin(),
                                      topo.children(r).end());
  EXPECT_EQ(root_kids, (std::vector<NodeId>{c1, a, c2, b}));
  const std::vector<NodeId> root_internal(topo.internal_children(r).begin(),
                                          topo.internal_children(r).end());
  EXPECT_EQ(root_internal, (std::vector<NodeId>{a, b}));
  const std::vector<NodeId> b_kids(topo.children(b).begin(),
                                   topo.children(b).end());
  EXPECT_EQ(b_kids, (std::vector<NodeId>{b1, c3}));
  EXPECT_TRUE(topo.children(a).empty());
  EXPECT_TRUE(topo.children(c1).empty());
}

TEST(TopologyTest, CsrSpansAreContiguousAndComplete) {
  TreeGenConfig config;
  config.num_internal = 60;
  const Tree tree = generate_tree(config, /*seed=*/11, /*index=*/0);
  const Topology& topo = tree.topology();

  // Every non-root node appears in exactly one children span, and the
  // spans' parents agree with parent().
  std::size_t seen = 0;
  for (std::size_t i = 0; i < topo.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    for (NodeId c : topo.children(id)) {
      EXPECT_EQ(topo.parent(c), id);
      ++seen;
    }
    // The internal-only span is the filtered children span, same order.
    std::vector<NodeId> filtered;
    for (NodeId c : topo.children(id)) {
      if (topo.is_internal(c)) filtered.push_back(c);
    }
    const std::vector<NodeId> internal(topo.internal_children(id).begin(),
                                       topo.internal_children(id).end());
    EXPECT_EQ(internal, filtered);
  }
  EXPECT_EQ(seen, topo.num_nodes() - 1);  // everyone but the root
}

TEST(TopologyTest, PostOrderStableAcrossRebuilds) {
  TreeGenConfig config;
  config.num_internal = 40;
  const Tree a = generate_tree(config, /*seed=*/5, /*index=*/3);
  const Tree b = generate_tree(config, /*seed=*/5, /*index=*/3);
  // Same construction sequence => identical post order (the DP tables and
  // decision reconstruction depend on this determinism).
  EXPECT_EQ(a.topology().internal_post_order(),
            b.topology().internal_post_order());
  // Children before parents.
  const Topology& topo = a.topology();
  std::vector<std::size_t> position(topo.num_nodes(), 0);
  const auto& order = topo.internal_post_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    position[static_cast<std::size_t>(order[i])] = i;
  }
  for (NodeId j : topo.internal_ids()) {
    for (NodeId c : topo.internal_children(j)) {
      EXPECT_LT(position[static_cast<std::size_t>(c)],
                position[static_cast<std::size_t>(j)]);
    }
  }
}

TEST(TopologyTest, TreeCopiesShareOneTopology) {
  TreeGenConfig config;
  config.num_internal = 25;
  const Tree tree = generate_tree(config, /*seed=*/2, /*index=*/0);
  const Tree copy = tree;
  EXPECT_EQ(tree.topology_ptr().get(), copy.topology_ptr().get())
      << "copying a Tree must share the topology, not duplicate it";

  Tree mutated = tree;
  mutated.set_pre_existing(mutated.root());
  EXPECT_EQ(mutated.topology_ptr().get(), tree.topology_ptr().get());
  EXPECT_FALSE(tree.pre_existing(tree.root()))
      << "scenario state must not leak between copies";
}

TEST(TopologyTest, TopologyOutlivesTree) {
  std::shared_ptr<const Topology> topo;
  Scenario scen;
  {
    TreeGenConfig config;
    config.num_internal = 10;
    const Tree tree = generate_tree(config, /*seed=*/3, /*index=*/0);
    topo = tree.topology_ptr();
    scen = tree.scenario();
  }  // the Tree is gone; the shared topology must survive
  EXPECT_EQ(topo->num_internal(), 10u);
  EXPECT_EQ(scen.topology_ptr().get(), topo.get());
  EXPECT_GT(scen.total_requests(), 0u);
}

}  // namespace
}  // namespace treeplace
