// End-to-end pipeline tests: generate → seed E → solve with every algorithm
// → re-validate everything with the independent evaluator, exactly the flow
// the bench harnesses run at scale.
#include <gtest/gtest.h>

#include "core/dp_update.h"
#include "core/greedy.h"
#include "core/greedy_power.h"
#include "core/heuristics.h"
#include "core/power_dp_symmetric.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "model/placement.h"
#include "tree/io.h"

namespace treeplace {
namespace {

/// The paper's Experiment 1 tree family, scaled down.
Tree make_experiment_tree(std::uint64_t index, std::size_t num_pre) {
  TreeGenConfig config;
  config.num_internal = 40;
  config.shape = kFatShape;
  config.client_probability = 0.5;
  config.min_requests = 1;
  config.max_requests = 6;
  Tree tree = generate_tree(config, 9090, index);
  Xoshiro256 rng = make_rng(9090, index, RngStream::kPreExisting);
  // Single-mode original modes: these trees feed the Eq. 2 cost pipeline.
  assign_random_pre_existing(tree, num_pre, rng, 1);
  return tree;
}

TEST(PipelineTest, CostPipelineOnPaperStyleTrees) {
  for (std::uint64_t i = 0; i < 6; ++i) {
    Tree tree = make_experiment_tree(i, 10);
    const MinCostConfig config{10, 0.1, 0.01};
    const GreedyResult gr = solve_greedy_min_count(tree, config.capacity);
    const MinCostResult dp = solve_min_cost_with_pre(tree, config);
    ASSERT_TRUE(gr.feasible);
    ASSERT_TRUE(dp.feasible);

    const ModeSet single = ModeSet::single(config.capacity);
    EXPECT_TRUE(validate(tree, gr.placement, single).valid);
    EXPECT_TRUE(validate(tree, dp.placement, single).valid);

    // Same (minimum) replica count; DP reuses at least as much.
    EXPECT_EQ(dp.breakdown.servers, static_cast<int>(gr.placement.size()));
    const CostModel costs = CostModel::simple(0.1, 0.01);
    const CostBreakdown gr_cost = evaluate_cost(tree, gr.placement, costs);
    EXPECT_GE(dp.breakdown.reused, gr_cost.reused);
    EXPECT_LE(dp.breakdown.cost, gr_cost.cost + 1e-12);
  }
}

TEST(PipelineTest, PowerPipelineOnPaperStyleTrees) {
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (std::uint64_t i = 0; i < 4; ++i) {
    TreeGenConfig config;
    config.num_internal = 20;
    config.max_requests = 5;
    Tree tree = generate_tree(config, 8080, i);
    Xoshiro256 rng = make_rng(8080, i, RngStream::kPreExisting);
    assign_random_pre_existing(tree, 4, rng, 2);

    const PowerDPResult dp = solve_power_symmetric(tree, modes, costs);
    const GreedyPowerResult gr = solve_greedy_power(tree, modes, costs);
    ASSERT_TRUE(dp.feasible);

    for (const PowerParetoPoint& p : dp.frontier) {
      EXPECT_TRUE(validate(tree, p.placement, modes).valid);
    }
    // GR's best unbounded candidate is never better than the DP optimum.
    const GreedyPowerCandidate* g = gr.best_within_cost(1e12);
    ASSERT_NE(g, nullptr);
    EXPECT_GE(g->power, dp.min_power()->power - 1e-9);
  }
}

TEST(PipelineTest, DynamicChainKeepsSolutionsValidAcrossSteps) {
  Tree tree = make_experiment_tree(0, 0);
  const MinCostConfig config{10, 0.1, 0.01};
  Placement previous;
  for (std::size_t step = 0; step < 6; ++step) {
    Xoshiro256 rng = make_rng(7070, step, RngStream::kWorkloadUpdate);
    redraw_requests(tree, 1, 6, rng);
    set_pre_existing_from_placement(tree, previous);
    const MinCostResult dp = solve_min_cost_with_pre(tree, config);
    ASSERT_TRUE(dp.feasible) << "step " << step;
    EXPECT_TRUE(validate(tree, dp.placement, ModeSet::single(10)).valid);
    // Reuse never exceeds the previous server count.
    EXPECT_LE(static_cast<std::size_t>(dp.breakdown.reused), previous.size());
    previous = dp.placement;
  }
}

TEST(PipelineTest, SerializationRoundTripPreservesSolverResults) {
  Tree tree = make_experiment_tree(2, 8);
  const Tree reparsed = parse_tree(serialize_tree(tree));
  const MinCostConfig config{10, 0.1, 0.01};
  const MinCostResult a = solve_min_cost_with_pre(tree, config);
  const MinCostResult b = solve_min_cost_with_pre(reparsed, config);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_NEAR(a.breakdown.cost, b.breakdown.cost, 1e-12);
  EXPECT_EQ(a.placement.nodes(), b.placement.nodes());
}

TEST(PipelineTest, HeuristicsSlotBetweenGreedyAndDp) {
  const CostModel costs = CostModel::simple(0.1, 0.01);
  for (std::uint64_t i = 0; i < 6; ++i) {
    Tree tree = make_experiment_tree(i + 20, 12);
    GreedyResult gr = solve_greedy_min_count(tree, 10);
    ASSERT_TRUE(gr.feasible);
    const double gr_cost = evaluate_cost(tree, gr.placement, costs).cost;
    improve_reuse(tree, 10, costs, gr.placement);
    const double heuristic_cost =
        evaluate_cost(tree, gr.placement, costs).cost;
    const MinCostResult dp =
        solve_min_cost_with_pre(tree, MinCostConfig{10, 0.1, 0.01});
    EXPECT_LE(heuristic_cost, gr_cost + 1e-12);
    EXPECT_GE(heuristic_cost, dp.breakdown.cost - 1e-9);
  }
}

}  // namespace
}  // namespace treeplace
