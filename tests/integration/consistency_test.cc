// Cross-solver consistency on a randomized corpus: every optimal algorithm
// must tell the same story wherever their problem statements overlap.
#include <gtest/gtest.h>

#include "core/dp_update.h"
#include "core/exhaustive.h"
#include "core/greedy.h"
#include "core/power_dp.h"
#include "core/power_dp_symmetric.h"
#include "tests/core/test_instances.h"

namespace treeplace {
namespace {

using testing::make_random_small;

/// MinCost-WithPre via the Section 3 DP vs the M=1 power DP frontier: the
/// cheapest frontier point must carry the same optimal cost.
TEST(ConsistencyTest, CostDpAgreesWithSingleModePowerDp) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Tree tree = make_random_small(515, i, 11, 1, 7, 4);
    for (const auto& [create, del] :
         std::vector<std::pair<double, double>>{
             {0.1, 0.01}, {1.0, 1.0}, {0.0, 0.0}, {0.4, 1.6}}) {
      const MinCostResult cost_dp = solve_min_cost_with_pre(
          tree, MinCostConfig{10, create, del});
      const PowerDPResult power_dp = solve_power_exact(
          tree, ModeSet::single(10), CostModel::simple(create, del));
      ASSERT_EQ(cost_dp.feasible, power_dp.feasible);
      if (!cost_dp.feasible) continue;
      ASSERT_FALSE(power_dp.frontier.empty());
      EXPECT_NEAR(cost_dp.breakdown.cost, power_dp.frontier.front().cost,
                  1e-9)
          << "tree " << i << " create=" << create << " delete=" << del;
    }
  }
}

/// Greedy count == cheapest server count the power DP can achieve when cost
/// is pure server count (create = delete = 0, M = 1).
TEST(ConsistencyTest, GreedyCountAgreesWithPowerDp) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    const Tree tree = make_random_small(616, i, 12, 1, 7, 0);
    const int greedy = greedy_replica_count(tree, 10);
    const PowerDPResult dp = solve_power_exact(
        tree, ModeSet::single(10), CostModel::simple(0.0, 0.0));
    if (greedy < 0) {
      EXPECT_FALSE(dp.feasible);
      continue;
    }
    ASSERT_TRUE(dp.feasible);
    // cost == R when create = delete = 0.
    EXPECT_NEAR(dp.frontier.front().cost, greedy, 1e-9) << "tree " << i;
  }
}

/// All three frontier producers agree on symmetric instances.
TEST(ConsistencyTest, ThreeWayFrontierAgreement) {
  const ModeSet modes({4, 9}, 1.5, 2.0);
  const CostModel costs = CostModel::uniform(2, 0.2, 0.05, 0.01);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const Tree tree = make_random_small(717, i, 7, 1, 8, 3, 2);
    const PowerDPResult exact = solve_power_exact(tree, modes, costs);
    const PowerDPResult sym = solve_power_symmetric(tree, modes, costs);
    const auto oracle = exhaustive_cost_power_frontier(tree, modes, costs);
    ASSERT_EQ(exact.feasible, sym.feasible);
    ASSERT_EQ(exact.feasible, !oracle.empty());
    if (!exact.feasible) continue;
    ASSERT_EQ(exact.frontier.size(), oracle.size()) << "tree " << i;
    ASSERT_EQ(sym.frontier.size(), oracle.size()) << "tree " << i;
    for (std::size_t k = 0; k < oracle.size(); ++k) {
      EXPECT_NEAR(exact.frontier[k].cost, oracle[k].cost, 1e-9);
      EXPECT_NEAR(sym.frontier[k].power, oracle[k].power, 1e-9);
    }
  }
}

/// Monotonicity across problem relaxations: more pre-existing servers can
/// only lower the optimal cost (reuse is free capacity), and a larger W can
/// only lower the replica count.
TEST(ConsistencyTest, RelaxationsNeverHurt) {
  for (std::uint64_t i = 0; i < 15; ++i) {
    Tree tree = make_random_small(818, i, 12, 1, 7, 0);
    const MinCostConfig config{10, 0.1, 0.0};  // delete cost 0 isolates reuse
    const MinCostResult none = solve_min_cost_with_pre(tree, config);
    ASSERT_TRUE(none.feasible);

    Xoshiro256 rng(derive_seed(818, i));
    assign_random_pre_existing(tree, 6, rng, 1);
    const MinCostResult some = solve_min_cost_with_pre(tree, config);
    ASSERT_TRUE(some.feasible);
    EXPECT_LE(some.breakdown.cost, none.breakdown.cost + 1e-9) << "tree " << i;

    const int count10 = greedy_replica_count(tree, 10);
    const int count20 = greedy_replica_count(tree, 20);
    ASSERT_GT(count10, 0);
    EXPECT_LE(count20, count10);
  }
}

}  // namespace
}  // namespace treeplace
