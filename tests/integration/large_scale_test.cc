// Invariant tests on paper-scale instances, where the exhaustive oracles no
// longer apply: the optimal algorithms must still agree with each other and
// with the independent evaluator.
#include <gtest/gtest.h>

#include "core/dp_update.h"
#include "core/greedy.h"
#include "core/power_dp_symmetric.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "model/placement.h"

namespace treeplace {
namespace {

TEST(LargeScaleTest, GreedyAndDpAgreeOnCountAtExperimentSize) {
  // N = 100 fat trees (the Figure 4 family): min-cost with create/delete < 1
  // must use the greedy's minimum replica count.
  for (std::uint64_t t = 0; t < 10; ++t) {
    TreeGenConfig config;
    config.num_internal = 100;
    config.shape = kFatShape;
    Tree tree = generate_tree(config, 1234, t);
    Xoshiro256 rng = make_rng(1234, t, RngStream::kPreExisting);
    assign_random_pre_existing(tree, 25, rng);

    const GreedyResult gr = solve_greedy_min_count(tree, 10);
    const MinCostResult dp =
        solve_min_cost_with_pre(tree, MinCostConfig{10, 0.1, 0.01});
    ASSERT_TRUE(gr.feasible && dp.feasible);
    EXPECT_EQ(static_cast<int>(gr.placement.size()), dp.breakdown.servers);
    EXPECT_TRUE(validate(tree, dp.placement, ModeSet::single(10)).valid);
  }
}

TEST(LargeScaleTest, DpReuseDominatesGreedyPerTree) {
  const CostModel costs = CostModel::simple(0.1, 0.01);
  for (std::uint64_t t = 0; t < 10; ++t) {
    TreeGenConfig config;
    config.num_internal = 100;
    config.shape = kHighShape;
    Tree tree = generate_tree(config, 4321, t);
    Xoshiro256 rng = make_rng(4321, t, RngStream::kPreExisting);
    assign_random_pre_existing(tree, 40, rng);

    const GreedyResult gr = solve_greedy_min_count(tree, 10);
    const MinCostResult dp =
        solve_min_cost_with_pre(tree, MinCostConfig{10, 0.1, 0.01});
    ASSERT_TRUE(gr.feasible && dp.feasible);
    EXPECT_GE(dp.breakdown.reused,
              evaluate_cost(tree, gr.placement, costs).reused);
  }
}

TEST(LargeScaleTest, PowerFrontierInvariantsAtExperimentSize) {
  // N = 50 (the Figure 8 family): frontier sorted, all points valid, the
  // cheapest point's cost equals the M=1-style cost optimum computed on
  // the same modes.
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (std::uint64_t t = 0; t < 5; ++t) {
    TreeGenConfig config;
    config.num_internal = 50;
    config.client_probability = 0.8;
    config.max_requests = 5;
    Tree tree = generate_tree(config, 5678, t);
    Xoshiro256 rng = make_rng(5678, t, RngStream::kPreExisting);
    assign_random_pre_existing(tree, 5, rng, 2);

    const PowerDPResult dp = solve_power_symmetric(tree, modes, costs);
    ASSERT_TRUE(dp.feasible);
    ASSERT_FALSE(dp.frontier.empty());
    for (std::size_t k = 0; k < dp.frontier.size(); ++k) {
      const PowerParetoPoint& p = dp.frontier[k];
      EXPECT_TRUE(validate(tree, p.placement, modes).valid);
      EXPECT_NEAR(p.power, total_power(p.placement, modes), 1e-9);
      EXPECT_NEAR(p.cost, evaluate_cost(tree, p.placement, costs).cost, 1e-9);
      if (k > 0) {
        EXPECT_GT(p.cost, dp.frontier[k - 1].cost);
        EXPECT_LT(p.power, dp.frontier[k - 1].power);
      }
    }
    // The min-power end uses only mode-0 servers whenever feasible demand
    // splitting allows it — at least, no point may use more power than
    // running every internal node at mode 0.
    const double all_mode0 =
        static_cast<double>(tree.num_internal()) * modes.power(0);
    EXPECT_LE(dp.min_power()->power, all_mode0 + 1e-9);
  }
}

TEST(LargeScaleTest, MemoryBoundedReconstructionMatchesTableCost) {
  // Reconstructed placements re-priced by the independent evaluator must
  // reproduce the DP's claimed optimum exactly, even on deep trees where
  // the decision chain is hundreds of merges long.
  TreeGenConfig config;
  config.num_internal = 300;
  config.shape = kHighShape;  // deep: long reconstruction chains
  Tree tree = generate_tree(config, 8765, 0);
  Xoshiro256 rng = make_rng(8765, 0, RngStream::kPreExisting);
  assign_random_pre_existing(tree, 75, rng);

  const MinCostResult dp =
      solve_min_cost_with_pre(tree, MinCostConfig{10, 0.1, 0.01});
  ASSERT_TRUE(dp.feasible);
  const CostBreakdown check =
      evaluate_cost(tree, dp.placement, CostModel::simple(0.1, 0.01));
  EXPECT_NEAR(dp.breakdown.cost, check.cost, 1e-9);
  EXPECT_TRUE(validate(tree, dp.placement, ModeSet::single(10)).valid);
}

TEST(LargeScaleTest, ThreeModeSymmetricDpAtModerateSize) {
  // M = 3 stresses the mode loops beyond the paper's experiments.
  const ModeSet modes({4, 7, 10}, 5.0, 2.0);
  const CostModel costs = CostModel::uniform(3, 0.1, 0.01, 0.001);
  TreeGenConfig config;
  config.num_internal = 30;
  config.max_requests = 5;
  Tree tree = generate_tree(config, 999, 0);
  Xoshiro256 rng = make_rng(999, 0, RngStream::kPreExisting);
  assign_random_pre_existing(tree, 4, rng, 3);

  const PowerDPResult dp = solve_power_symmetric(tree, modes, costs);
  ASSERT_TRUE(dp.feasible);
  for (const PowerParetoPoint& p : dp.frontier) {
    EXPECT_TRUE(validate(tree, p.placement, modes).valid);
  }
}

}  // namespace
}  // namespace treeplace
