#include "serve/request_stream.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "gen/tree_gen.h"
#include "support/check.h"
#include "tree/io.h"

namespace treeplace::serve {
namespace {

std::string tree_record(std::uint64_t index = 0) {
  TreeGenConfig config;
  config.num_internal = 5;
  return serialize_tree(generate_tree(config, /*seed=*/91, index));
}

TEST(RequestStreamTest, TreeRecordGetsOrdinalKey) {
  std::istringstream is(tree_record(0) + tree_record(1));
  RequestStreamReader reader(is);

  auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->id, 1u);
  EXPECT_EQ(first->topology_key, "1");
  ASSERT_TRUE(first->tree.has_value());
  EXPECT_TRUE(first->deltas.empty());

  auto second = reader.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, 2u);
  EXPECT_EQ(second->topology_key, "2");

  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.requests_read(), 2u);
  EXPECT_EQ(reader.trees_read(), 2u);
}

TEST(RequestStreamTest, ScenarioRecordParsesDeltas) {
  std::istringstream is(tree_record() +
                        "treeplace-scenario v1 1\n"
                        "R 3 7\n"
                        "E 2 1\n"
                        "E 4\n"
                        "X 2\n"
                        "Z\n");
  RequestStreamReader reader(is);
  ASSERT_TRUE(reader.next().has_value());  // the tree record

  auto request = reader.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->topology_key, "1");
  EXPECT_FALSE(request->tree.has_value());
  ASSERT_EQ(request->deltas.size(), 5u);

  EXPECT_EQ(request->deltas[0].op, ScenarioDelta::Op::kSetRequests);
  EXPECT_EQ(request->deltas[0].node, 3);
  EXPECT_EQ(request->deltas[0].requests, 7u);

  EXPECT_EQ(request->deltas[1].op, ScenarioDelta::Op::kSetPreExisting);
  EXPECT_EQ(request->deltas[1].node, 2);
  EXPECT_EQ(request->deltas[1].mode, 1);

  // E without a mode defaults to original mode 0.
  EXPECT_EQ(request->deltas[2].op, ScenarioDelta::Op::kSetPreExisting);
  EXPECT_EQ(request->deltas[2].node, 4);
  EXPECT_EQ(request->deltas[2].mode, 0);

  EXPECT_EQ(request->deltas[3].op, ScenarioDelta::Op::kClearPreExisting);
  EXPECT_EQ(request->deltas[3].node, 2);

  EXPECT_EQ(request->deltas[4].op, ScenarioDelta::Op::kClearAllPre);
}

TEST(RequestStreamTest, ScenarioRecordMayPrecedeOrFollowAnyTree) {
  // Keys are resolved by the stream server, not the reader: a scenario
  // record referencing a later (or absent) key still parses.
  std::istringstream is(
      "treeplace-scenario v1 42\nR 1 2\n" + tree_record());
  RequestStreamReader reader(is);
  auto request = reader.next();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->topology_key, "42");
  auto tree = reader.next();
  ASSERT_TRUE(tree.has_value());
  EXPECT_EQ(tree->topology_key, "1");  // ordinal counts trees, not records
}

TEST(RequestStreamTest, BlankLinesAndCommentsSkipped) {
  std::istringstream is(tree_record() +
                        "\n# a comment\n"
                        "treeplace-scenario v1 1\n"
                        "# another\n"
                        "R 3 9\n"
                        "\n");
  RequestStreamReader reader(is);
  ASSERT_TRUE(reader.next().has_value());
  auto request = reader.next();
  ASSERT_TRUE(request.has_value());
  ASSERT_EQ(request->deltas.size(), 1u);
  EXPECT_EQ(request->deltas[0].requests, 9u);
}

TEST(RequestStreamTest, MalformedRecordsThrow) {
  {
    std::istringstream is("treeplace-scenario v1\n");  // missing key
    RequestStreamReader reader(is);
    EXPECT_THROW(reader.next(), CheckError);
  }
  {
    std::istringstream is("treeplace-scenario v1 1\nQ 1\n");  // bad tag
    RequestStreamReader reader(is);
    EXPECT_THROW(reader.next(), CheckError);
  }
  {
    std::istringstream is("treeplace-scenario v1 1\nR 3\n");  // missing value
    RequestStreamReader reader(is);
    EXPECT_THROW(reader.next(), CheckError);
  }
  {
    std::istringstream is("treeplace-scenario v1 1\nE 4 x\n");  // bad mode
    RequestStreamReader reader(is);
    EXPECT_THROW(reader.next(), CheckError);
  }
  {
    std::istringstream is("treeplace-scenario v1 1\nR 3 5 junk\n");
    RequestStreamReader reader(is);
    EXPECT_THROW(reader.next(), CheckError);
  }
  {
    // Version matching is token-exact: v12 is not v1-with-a-key-of-"2 1".
    std::istringstream is("treeplace-scenario v12 1\nR 3 5\n");
    RequestStreamReader reader(is);
    EXPECT_THROW(reader.next(), CheckError);
  }
  {
    std::istringstream is("treeplace-frobnicate v1\n");  // unknown record
    RequestStreamReader reader(is);
    EXPECT_THROW(reader.next(), CheckError);
  }
  {
    std::istringstream is("not a record\n");
    RequestStreamReader reader(is);
    EXPECT_THROW(reader.next(), CheckError);
  }
}

TEST(RequestStreamTest, TruncatedRecordsThrowOrEndCleanly) {
  {
    // A tree line cut off mid-fields (connection dropped mid-write) is
    // malformed, not silently a smaller tree.
    std::istringstream is("treeplace-tree v1\nI 0 -1 0 -1\nC 1 0\n");
    RequestStreamReader reader(is);
    EXPECT_THROW(reader.next(), CheckError);
  }
  {
    // A header with nothing after it: a tree record truncated before its
    // body fails validation (a tree needs at least a root).
    std::istringstream is("treeplace-tree v1\n");
    RequestStreamReader reader(is);
    EXPECT_THROW(reader.next(), CheckError);
  }
  {
    // EOF at a line boundary ends the record cleanly — half-close framing.
    std::istringstream is(tree_record() + "treeplace-scenario v1 1\nR 6 7");
    RequestStreamReader reader(is);
    ASSERT_TRUE(reader.next().has_value());
    auto last = reader.next();
    ASSERT_TRUE(last.has_value());
    ASSERT_EQ(last->deltas.size(), 1u);
    EXPECT_EQ(last->deltas[0].requests, 7u);
  }
}

TEST(RequestStreamTest, InterleavedGarbageBetweenRecordsThrows) {
  // The garbage is claimed by the tree record's body (only a header ends a
  // record), so it surfaces as a malformed node line, not silence.
  std::istringstream is(tree_record() +
                        "some binary junk between records\n" +
                        "treeplace-scenario v1 1\nR 6 7\n");
  RequestStreamReader reader(is);
  EXPECT_THROW(reader.next(), CheckError);
}

TEST(RequestStreamTest, OversizedLineThrows) {
  std::istringstream is(tree_record() + "treeplace-scenario v1 1\nR 6 7 " +
                        std::string(2u << 20, 'x') + "\n");
  RequestStreamReader reader(is);
  ASSERT_TRUE(reader.next().has_value());
  EXPECT_THROW(reader.next(), CheckError);
}

TEST(RequestStreamTest, CrlfStreamsParseIdentically) {
  // The whole stream written with CRLF line endings (a Windows client or a
  // transcoding relay) must parse exactly like the LF original.
  const std::string lf = tree_record() +
                         "treeplace-scenario v1 1\nR 6 7\nE 2 1\n";
  std::string crlf;
  for (const char c : lf) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::istringstream lf_is(lf);
  std::istringstream crlf_is(crlf);
  RequestStreamReader lf_reader(lf_is);
  RequestStreamReader crlf_reader(crlf_is);
  for (;;) {
    auto a = lf_reader.next();
    auto b = crlf_reader.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    EXPECT_EQ(a->topology_key, b->topology_key);
    ASSERT_EQ(a->tree.has_value(), b->tree.has_value());
    if (a->tree) EXPECT_EQ(serialize_tree(*a->tree), serialize_tree(*b->tree));
    EXPECT_EQ(a->deltas.size(), b->deltas.size());
  }
}

TEST(RequestStreamTest, EmptyStreamYieldsNothing) {
  std::istringstream is("\n# only comments\n\n");
  RequestStreamReader reader(is);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.requests_read(), 0u);
}

}  // namespace
}  // namespace treeplace::serve
