#include "serve/topology_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gen/tree_gen.h"
#include "support/check.h"

namespace treeplace::serve {
namespace {

Tree make_tree(std::uint64_t index) {
  TreeGenConfig config;
  config.num_internal = 6;
  return generate_tree(config, /*seed=*/77, index);
}

/// Keys in the single-stream namespace (0), as StreamServer issues them.
CacheKey key(std::string topology_key) {
  return CacheKey{0, std::move(topology_key)};
}

TEST(TopologyCacheTest, PutThenGetReturnsEntry) {
  TopologyCache cache(4);
  Tree tree = make_tree(0);
  const auto topo = tree.topology_ptr();
  cache.put(key("a"), topo, tree.scenario());

  const auto entry = cache.get(key("a"));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->topology, topo);
  EXPECT_EQ(entry->base.total_requests(), tree.total_requests());
}

TEST(TopologyCacheTest, GetReturnsIndependentFork) {
  TopologyCache cache(4);
  Tree tree = make_tree(0);
  cache.put(key("a"), tree.topology_ptr(), tree.scenario());

  auto fork = cache.get(key("a"));
  ASSERT_TRUE(fork.has_value());
  fork->base.set_pre_existing(fork->base.topology().root());

  // The cached base is untouched by edits to the handed-out fork.
  const auto again = cache.get(key("a"));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->base.num_pre_existing(), 0u);
}

TEST(TopologyCacheTest, NamespacesIsolateIdenticalOrdinalKeys) {
  // Two connections both publish "1": distinct entries, distinct sessions.
  TopologyCache cache(4);
  Tree a = make_tree(0);
  Tree b = make_tree(1);
  const auto sa = cache.put(CacheKey{7, "1"}, a.topology_ptr(), a.scenario());
  const auto sb = cache.put(CacheKey{9, "1"}, b.topology_ptr(), b.scenario());
  EXPECT_NE(sa, sb);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get(CacheKey{7, "1"})->topology, a.topology_ptr());
  EXPECT_EQ(cache.get(CacheKey{9, "1"})->topology, b.topology_ptr());
  EXPECT_FALSE(cache.get(CacheKey{8, "1"}).has_value());
  EXPECT_NE((CacheKey{7, "1"}.hash()), (CacheKey{9, "1"}.hash()));
}

TEST(TopologyCacheTest, ForEachVisitsEveryResidentEntry) {
  TopologyCache cache(4);
  Tree a = make_tree(0);
  Tree b = make_tree(1);
  cache.put(CacheKey{1, "1"}, a.topology_ptr(), a.scenario());
  cache.put(CacheKey{2, "1"}, b.topology_ptr(), b.scenario());
  std::vector<std::uint64_t> seen;
  cache.for_each([&](const CacheKey& k, const CachedTopology& entry) {
    seen.push_back(k.namespace_id);
    EXPECT_NE(entry.session, nullptr);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2}));
}

TEST(TopologyCacheTest, MissingKeyCountsMiss) {
  TopologyCache cache(2);
  EXPECT_FALSE(cache.get(key("nope")).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(TopologyCacheTest, EvictsLeastRecentlyUsed) {
  TopologyCache cache(2);
  Tree a = make_tree(0);
  Tree b = make_tree(1);
  Tree c = make_tree(2);
  cache.put(key("a"), a.topology_ptr(), a.scenario());
  cache.put(key("b"), b.topology_ptr(), b.scenario());

  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_TRUE(cache.get(key("a")).has_value());
  cache.put(key("c"), c.topology_ptr(), c.scenario());

  EXPECT_TRUE(cache.contains(key("a")));
  EXPECT_FALSE(cache.contains(key("b")));
  EXPECT_TRUE(cache.contains(key("c")));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TopologyCacheTest, ReplacingAKeyDoesNotEvict) {
  TopologyCache cache(2);
  Tree a = make_tree(0);
  Tree b = make_tree(1);
  cache.put(key("a"), a.topology_ptr(), a.scenario());
  cache.put(key("b"), b.topology_ptr(), b.scenario());
  cache.put(key("a"), b.topology_ptr(), b.scenario());  // replace in place

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  const auto entry = cache.get(key("a"));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->topology, b.topology_ptr());
}

TEST(TopologyCacheTest, EvictedTopologyStaysAliveThroughSharedPtr) {
  TopologyCache cache(1);
  Tree a = make_tree(0);
  cache.put(key("a"), a.topology_ptr(), a.scenario());
  const auto held = cache.get(key("a"));
  ASSERT_TRUE(held.has_value());

  Tree b = make_tree(1);
  cache.put(key("b"), b.topology_ptr(), b.scenario());  // evicts "a"
  EXPECT_FALSE(cache.contains(key("a")));
  // The held entry still works: in-flight solves outlive eviction.
  EXPECT_GT(held->topology->num_internal(), 0u);
}

TEST(TopologyCacheTest, RejectsMismatchedScenario) {
  TopologyCache cache(2);
  Tree a = make_tree(0);
  Tree b = make_tree(1);
  EXPECT_THROW(cache.put(key("a"), a.topology_ptr(), b.scenario()), CheckError);
}

TEST(TopologyCacheTest, ConcurrentGetsAndPuts) {
  TopologyCache cache(4);
  std::vector<Tree> trees;
  for (std::uint64_t i = 0; i < 8; ++i) trees.push_back(make_tree(i));
  for (std::size_t i = 0; i < 4; ++i) {
    cache.put(key(std::to_string(i)), trees[i].topology_ptr(),
              trees[i].scenario());
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < 50; ++i) {
        const std::size_t k = (t + i) % 8;
        if (k < 4) {
          (void)cache.get(key(std::to_string(k)));
        } else {
          cache.put(key(std::to_string(k)), trees[k].topology_ptr(),
                    trees[k].scenario());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), 4u);
}

TEST(TopologyCacheTest, SessionRidesWithEntry) {
  TopologyCache cache(2);
  Tree tree = make_tree(0);
  const auto session = cache.put(key("a"), tree.topology_ptr(), tree.scenario());
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->topology_ptr(), tree.topology_ptr());

  // Every get hands out the same session (shared warm-start state).
  const auto entry = cache.get(key("a"));
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->session, session);

  // Re-registering a key starts a fresh session (the base changed).
  Tree again = make_tree(0);
  const auto replaced =
      cache.put(key("a"), again.topology_ptr(), again.scenario());
  EXPECT_NE(replaced, session);
  EXPECT_EQ(cache.get(key("a"))->session, replaced);
}

TEST(TopologyCacheTest, EvictionDropsSessionButHandedOutCopiesSurvive) {
  TopologyCache cache(1);
  Tree a = make_tree(0);
  Tree b = make_tree(1);
  cache.put(key("a"), a.topology_ptr(), a.scenario());
  const auto held = cache.get(key("a"))->session;  // an in-flight solve's copy
  cache.put(key("b"), b.topology_ptr(), b.scenario());  // evicts "a"
  EXPECT_FALSE(cache.get(key("a")).has_value());
  // The handed-out shared_ptr keeps the evicted session usable.
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->topology_ptr(), a.topology_ptr());
}

}  // namespace
}  // namespace treeplace::serve
