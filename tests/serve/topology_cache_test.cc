#include "serve/topology_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "gen/tree_gen.h"
#include "support/check.h"

namespace treeplace::serve {
namespace {

Tree make_tree(std::uint64_t index) {
  TreeGenConfig config;
  config.num_internal = 6;
  return generate_tree(config, /*seed=*/77, index);
}

TEST(TopologyCacheTest, PutThenGetReturnsEntry) {
  TopologyCache cache(4);
  Tree tree = make_tree(0);
  const auto topo = tree.topology_ptr();
  cache.put("a", topo, tree.scenario());

  const auto entry = cache.get("a");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->topology, topo);
  EXPECT_EQ(entry->base.total_requests(), tree.total_requests());
}

TEST(TopologyCacheTest, GetReturnsIndependentFork) {
  TopologyCache cache(4);
  Tree tree = make_tree(0);
  cache.put("a", tree.topology_ptr(), tree.scenario());

  auto fork = cache.get("a");
  ASSERT_TRUE(fork.has_value());
  fork->base.set_pre_existing(fork->base.topology().root());

  // The cached base is untouched by edits to the handed-out fork.
  const auto again = cache.get("a");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->base.num_pre_existing(), 0u);
}

TEST(TopologyCacheTest, MissingKeyCountsMiss) {
  TopologyCache cache(2);
  EXPECT_FALSE(cache.get("nope").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(TopologyCacheTest, EvictsLeastRecentlyUsed) {
  TopologyCache cache(2);
  Tree a = make_tree(0);
  Tree b = make_tree(1);
  Tree c = make_tree(2);
  cache.put("a", a.topology_ptr(), a.scenario());
  cache.put("b", b.topology_ptr(), b.scenario());

  // Touch "a" so "b" becomes the LRU victim.
  EXPECT_TRUE(cache.get("a").has_value());
  cache.put("c", c.topology_ptr(), c.scenario());

  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(TopologyCacheTest, ReplacingAKeyDoesNotEvict) {
  TopologyCache cache(2);
  Tree a = make_tree(0);
  Tree b = make_tree(1);
  cache.put("a", a.topology_ptr(), a.scenario());
  cache.put("b", b.topology_ptr(), b.scenario());
  cache.put("a", b.topology_ptr(), b.scenario());  // replace in place

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  const auto entry = cache.get("a");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->topology, b.topology_ptr());
}

TEST(TopologyCacheTest, EvictedTopologyStaysAliveThroughSharedPtr) {
  TopologyCache cache(1);
  Tree a = make_tree(0);
  cache.put("a", a.topology_ptr(), a.scenario());
  const auto held = cache.get("a");
  ASSERT_TRUE(held.has_value());

  Tree b = make_tree(1);
  cache.put("b", b.topology_ptr(), b.scenario());  // evicts "a"
  EXPECT_FALSE(cache.contains("a"));
  // The held entry still works: in-flight solves outlive eviction.
  EXPECT_GT(held->topology->num_internal(), 0u);
}

TEST(TopologyCacheTest, RejectsMismatchedScenario) {
  TopologyCache cache(2);
  Tree a = make_tree(0);
  Tree b = make_tree(1);
  EXPECT_THROW(cache.put("a", a.topology_ptr(), b.scenario()), CheckError);
}

TEST(TopologyCacheTest, ConcurrentGetsAndPuts) {
  TopologyCache cache(4);
  std::vector<Tree> trees;
  for (std::uint64_t i = 0; i < 8; ++i) trees.push_back(make_tree(i));
  for (std::size_t i = 0; i < 4; ++i) {
    cache.put(std::to_string(i), trees[i].topology_ptr(),
              trees[i].scenario());
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < 50; ++i) {
        const std::size_t k = (t + i) % 8;
        if (k < 4) {
          (void)cache.get(std::to_string(k));
        } else {
          cache.put(std::to_string(k), trees[k].topology_ptr(),
                    trees[k].scenario());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(cache.size(), 4u);
}

TEST(TopologyCacheTest, SessionRidesWithEntry) {
  TopologyCache cache(2);
  Tree tree = make_tree(0);
  const auto session = cache.put("a", tree.topology_ptr(), tree.scenario());
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->topology_ptr(), tree.topology_ptr());

  // Every get hands out the same session (shared warm-start state).
  const auto entry = cache.get("a");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->session, session);

  // Re-registering a key starts a fresh session (the base changed).
  Tree again = make_tree(0);
  const auto replaced =
      cache.put("a", again.topology_ptr(), again.scenario());
  EXPECT_NE(replaced, session);
  EXPECT_EQ(cache.get("a")->session, replaced);
}

TEST(TopologyCacheTest, EvictionDropsSessionButHandedOutCopiesSurvive) {
  TopologyCache cache(1);
  Tree a = make_tree(0);
  Tree b = make_tree(1);
  cache.put("a", a.topology_ptr(), a.scenario());
  const auto held = cache.get("a")->session;  // an in-flight solve's copy
  cache.put("b", b.topology_ptr(), b.scenario());  // evicts "a"
  EXPECT_FALSE(cache.get("a").has_value());
  // The handed-out shared_ptr keeps the evicted session usable.
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->topology_ptr(), a.topology_ptr());
}

}  // namespace
}  // namespace treeplace::serve
