// Wire-framing tests: incremental line framing, the incremental record
// parser's parity with RequestStreamReader, shared result rendering, and
// the latency histogram behind the serve summary's p50/p99 lines.
#include "serve/wire.h"

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "gen/tree_gen.h"
#include "support/check.h"
#include "tree/io.h"

namespace treeplace::serve {
namespace {

/// Pushes `bytes` into the buffer through the socket-facing interface.
void push(LineBuffer& buf, std::string_view bytes) {
  const std::span<char> dst = buf.writable(bytes.size());
  std::memcpy(dst.data(), bytes.data(), bytes.size());
  buf.commit(bytes.size());
}

TEST(LineBufferTest, FramesLinesAcrossArbitraryFragments) {
  LineBuffer buf;
  push(buf, "hel");
  EXPECT_FALSE(buf.next_line().has_value());
  push(buf, "lo\nwor");
  auto line = buf.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "hello");
  EXPECT_FALSE(buf.next_line().has_value());  // "wor" is partial
  EXPECT_TRUE(buf.mid_line());
  push(buf, "ld\n");
  line = buf.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "world");
  EXPECT_FALSE(buf.mid_line());
}

TEST(LineBufferTest, StripsCarriageReturns) {
  LineBuffer buf;
  push(buf, "a b c\r\n\r\nplain\n");
  EXPECT_EQ(buf.next_line().value(), "a b c");
  EXPECT_EQ(buf.next_line().value(), "");  // CRLF blank line
  EXPECT_EQ(buf.next_line().value(), "plain");
}

TEST(LineBufferTest, TakeRestReturnsFinalUnterminatedLine) {
  LineBuffer buf;
  push(buf, "done\nhalf a line\r");
  EXPECT_EQ(buf.next_line().value(), "done");
  EXPECT_FALSE(buf.next_line().has_value());
  auto rest = buf.take_rest();
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(*rest, "half a line");  // trailing CR stripped, as getline would
  EXPECT_FALSE(buf.take_rest().has_value());
  EXPECT_EQ(buf.buffered_bytes(), 0u);
}

TEST(LineBufferTest, OversizedLineThrows) {
  LineBuffer buf(/*max_line_bytes=*/16);
  push(buf, std::string(17, 'x'));  // unterminated and already too long
  EXPECT_THROW(buf.next_line(), CheckError);

  LineBuffer ok(/*max_line_bytes=*/16);
  push(ok, std::string(16, 'y') + "\n");
  EXPECT_EQ(ok.next_line().value(), std::string(16, 'y'));
}

TEST(LineBufferTest, ReusesStorageAcrossManyLines) {
  // Steady-state framing must not grow the buffer: consumed bytes are
  // compacted away on the next writable() call.
  LineBuffer buf;
  for (int i = 0; i < 10000; ++i) {
    push(buf, "treeplace-scenario v1 1\nR 3 5\n");
    ASSERT_TRUE(buf.next_line().has_value());
    ASSERT_TRUE(buf.next_line().has_value());
  }
  EXPECT_EQ(buf.buffered_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// RecordParser parity with RequestStreamReader

std::string tree_record(std::uint64_t index = 0) {
  TreeGenConfig config;
  config.num_internal = 5;
  return serialize_tree(generate_tree(config, /*seed=*/91, index));
}

/// Runs a whole stream through the incremental parser, line by line.
std::vector<ServeRequest> parse_all(const std::string& text) {
  RecordParser parser;
  std::vector<ServeRequest> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (auto done = parser.feed(line)) out.push_back(std::move(*done));
  }
  if (auto done = parser.finish()) out.push_back(std::move(*done));
  return out;
}

/// Runs the same stream through the blocking reader.
std::vector<ServeRequest> read_all(const std::string& text) {
  std::istringstream is(text);
  RequestStreamReader reader(is);
  std::vector<ServeRequest> out;
  while (auto request = reader.next()) out.push_back(std::move(*request));
  return out;
}

void expect_requests_match(const std::vector<ServeRequest>& a,
                           const std::vector<ServeRequest>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].topology_key, b[i].topology_key);
    ASSERT_EQ(a[i].tree.has_value(), b[i].tree.has_value());
    if (a[i].tree) {
      EXPECT_EQ(serialize_tree(*a[i].tree), serialize_tree(*b[i].tree));
    }
    ASSERT_EQ(a[i].deltas.size(), b[i].deltas.size());
    for (std::size_t d = 0; d < a[i].deltas.size(); ++d) {
      EXPECT_EQ(a[i].deltas[d].op, b[i].deltas[d].op);
      EXPECT_EQ(a[i].deltas[d].node, b[i].deltas[d].node);
      EXPECT_EQ(a[i].deltas[d].requests, b[i].deltas[d].requests);
      EXPECT_EQ(a[i].deltas[d].mode, b[i].deltas[d].mode);
    }
  }
}

TEST(RecordParserTest, MatchesStreamReaderOnMixedStreams) {
  const std::string stream = tree_record(0) + tree_record(1) +
                             "\n# comment\n"
                             "treeplace-scenario v1 1\nR 6 7\nE 2 1\nE 4\n"
                             "treeplace-scenario v1 2\nX 2\nZ\n";
  expect_requests_match(parse_all(stream), read_all(stream));
}

TEST(RecordParserTest, FinalRecordWithoutTrailingNewlineCompletes) {
  RecordParser parser;
  EXPECT_FALSE(parser.feed("treeplace-scenario v1 1").has_value());
  EXPECT_FALSE(parser.feed("R 6 7").has_value());
  EXPECT_TRUE(parser.in_record());
  auto last = parser.finish();
  ASSERT_TRUE(last.has_value());
  ASSERT_EQ(last->deltas.size(), 1u);
  EXPECT_EQ(last->deltas[0].requests, 7u);
  EXPECT_FALSE(parser.in_record());
}

TEST(RecordParserTest, MalformedLinesThrowLikeTheStreamReader) {
  const char* bad[] = {
      "treeplace-scenario v1\nR 3 5\n",    // missing key
      "treeplace-scenario v1 1\nQ 1\n",    // unknown delta tag
      "treeplace-scenario v1 1\nR 3\n",    // missing value
      "treeplace-scenario v1 1\nE 4 x\n",  // unparsable mode
      "treeplace-scenario v1 1\nR 3 5 junk\n",
      "treeplace-scenario v12 1\nR 3 5\n",  // token-exact version match
      "treeplace-frobnicate v1\n",
      "not a record\n",
      "treeplace-tree v1\nI zero\n",
      "treeplace-tree v1\nI 5 -1 0 -1\n",  // non-consecutive ids
  };
  for (const char* stream : bad) {
    EXPECT_THROW(parse_all(stream), CheckError) << stream;
    EXPECT_THROW(read_all(stream), CheckError) << stream;
  }
}

TEST(RecordParserTest, IstreamNumberQuirksMatch) {
  // istringstream extraction accepts "R3 5" (tag is one char, then the
  // number) and "+7"; the from_chars-based parser must agree.
  const std::string stream =
      tree_record() + "treeplace-scenario v1 1\nR3 +7\n";
  const auto via_parser = parse_all(stream);
  const auto via_reader = read_all(stream);
  expect_requests_match(via_parser, via_reader);
  ASSERT_EQ(via_parser.back().deltas.size(), 1u);
  EXPECT_EQ(via_parser.back().deltas[0].node, 3);
  EXPECT_EQ(via_parser.back().deltas[0].requests, 7u);
}

// ---------------------------------------------------------------------------
// OutputBuffer

TEST(OutputBufferTest, AppendsAndConsumesInOrder) {
  OutputBuffer out;
  out.append("result a\n");
  out.append("result b\n");
  EXPECT_EQ(out.size(), 18u);
  const auto pending = out.pending();
  EXPECT_EQ(std::string_view(pending.data(), 8), "result a");
  out.consume(9);
  EXPECT_EQ(std::string_view(out.pending().data(), out.size()), "result b\n");
  out.consume(9);
  EXPECT_TRUE(out.empty());
}

// ---------------------------------------------------------------------------
// Result rendering

TEST(RenderResultTest, ErrorAndTimingShapes) {
  ServeResult failed;
  failed.error = "boom";
  const RenderedResult rendered =
      render_result(3, "7", failed, ResultFormat{true, false});
  EXPECT_EQ(rendered.status, ResultStatus::kError);
  EXPECT_EQ(rendered.line.rfind("result id=3 topo=7 status=error", 0), 0u);
  EXPECT_NE(rendered.line.find("error=\"boom\""), std::string::npos);
  EXPECT_EQ(rendered.line.back(), '\n');
}

TEST(RenderResultTest, StripTimingsRemovesOnlyTimingFields) {
  const std::string block =
      "result id=1 topo=1 status=ok cost=3 queue_s=0.125 solve_s=0.5 "
      "work=9 placement=0:0\n"
      "# serve: done\n";
  const std::string stripped = strip_timings(block);
  EXPECT_EQ(stripped,
            "result id=1 topo=1 status=ok cost=3 work=9 placement=0:0\n"
            "# serve: done\n");
}

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogramTest, PercentilesBracketTheSamples) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.percentile(0.5), 0.0);  // empty
  for (int i = 0; i < 90; ++i) hist.record(1e-3);
  for (int i = 0; i < 10; ++i) hist.record(2.0);
  EXPECT_EQ(hist.count(), 100u);
  const double p50 = hist.percentile(0.5);
  EXPECT_GE(p50, 1e-3);
  EXPECT_LT(p50, 2e-3);  // ~25% bucket resolution
  const double p99 = hist.percentile(0.99);
  EXPECT_GE(p99, 2.0);
  EXPECT_LT(p99, 3.0);
}

}  // namespace
}  // namespace treeplace::serve
