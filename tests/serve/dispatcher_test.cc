#include "serve/dispatcher.h"

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "solver/registry.h"
#include "support/prng.h"

namespace treeplace::serve {
namespace {

Instance make_instance(const std::shared_ptr<const Topology>& topo,
                       const Scenario& base, std::uint64_t stream) {
  Scenario scen = base;
  Xoshiro256 workload_rng = make_rng(500, stream, RngStream::kWorkloadUpdate);
  redraw_requests(scen, 1, 6, workload_rng);
  Xoshiro256 pre_rng = make_rng(500, stream, RngStream::kPreExisting);
  assign_random_pre_existing(scen, 3, pre_rng);
  return Instance::single_mode(topo, std::move(scen), /*capacity=*/10,
                               /*create=*/0.1, /*delete_cost=*/0.01);
}

class DispatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TreeGenConfig config;
    config.num_internal = 24;
    config.client_probability = 0.8;
    tree_ = generate_tree(config, /*seed=*/51, /*index=*/0);
  }

  Tree tree_;
};

TEST_F(DispatcherTest, MatchesDirectSolves) {
  const auto topo = tree_.topology_ptr();
  const Scenario base = tree_.scenario();
  const auto reference_solver = make_solver("update-dp");

  DispatcherConfig config;
  config.algos = {"update-dp"};
  config.threads = 4;
  SolveDispatcher dispatcher(config);

  constexpr std::size_t kRequests = 24;
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(kRequests);
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    futures.push_back(dispatcher.submit(make_instance(topo, base, i)));
  }
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    const ServeResult result = futures[i].get();
    ASSERT_TRUE(result.ok) << result.error;
    const Solution expected =
        reference_solver->solve(make_instance(topo, base, i));
    EXPECT_EQ(result.solution.feasible, expected.feasible);
    EXPECT_DOUBLE_EQ(result.solution.breakdown.cost, expected.breakdown.cost);
    EXPECT_EQ(result.solution.placement, expected.placement);
  }

  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.submitted, kRequests);
  EXPECT_EQ(stats.completed, kRequests);
  ASSERT_EQ(stats.per_solver.size(), 1u);
  EXPECT_EQ(stats.per_solver[0].algo, "update-dp");
  EXPECT_EQ(stats.per_solver[0].solves, kRequests);
  EXPECT_EQ(stats.per_solver[0].errors, 0u);
  EXPECT_GT(stats.per_solver[0].total_solve_seconds, 0.0);
}

TEST_F(DispatcherTest, BoundedQueueNeverExceedsCapacity) {
  DispatcherConfig config;
  config.algos = {"update-dp"};
  config.threads = 2;
  config.queue_capacity = 3;
  SolveDispatcher dispatcher(config);
  EXPECT_EQ(dispatcher.queue_capacity(), 3u);

  const auto topo = tree_.topology_ptr();
  const Scenario base = tree_.scenario();
  std::vector<std::future<ServeResult>> futures;
  for (std::uint64_t i = 0; i < 20; ++i) {
    futures.push_back(dispatcher.submit(make_instance(topo, base, i)));
  }
  for (auto& future : futures) EXPECT_TRUE(future.get().ok);
  // max_in_flight is sampled under the same lock that enforces the bound.
  EXPECT_LE(dispatcher.stats().max_in_flight, 3u);
  EXPECT_EQ(dispatcher.stats().completed, 20u);
}

TEST_F(DispatcherTest, MultipleSolversKeepSeparateStats) {
  DispatcherConfig config;
  config.algos = {"update-dp", "greedy"};
  config.threads = 2;
  SolveDispatcher dispatcher(config);
  ASSERT_EQ(dispatcher.num_solvers(), 2u);

  const auto topo = tree_.topology_ptr();
  const Scenario base = tree_.scenario();
  auto dp = dispatcher.submit(0, make_instance(topo, base, 1));
  auto gr1 = dispatcher.submit(1, make_instance(topo, base, 1));
  auto gr2 = dispatcher.submit(1, make_instance(topo, base, 2));
  EXPECT_TRUE(dp.get().ok);
  EXPECT_TRUE(gr1.get().ok);
  EXPECT_TRUE(gr2.get().ok);

  const DispatcherStats stats = dispatcher.stats();
  EXPECT_EQ(stats.per_solver[0].solves, 1u);
  EXPECT_EQ(stats.per_solver[1].solves, 2u);
}

TEST_F(DispatcherTest, CapabilityRejectionResolvesWithError) {
  DispatcherConfig config;
  // exhaustive-power caps N at 14; our 24-internal tree must be rejected.
  config.algos = {"exhaustive-power"};
  config.threads = 1;
  SolveDispatcher dispatcher(config);

  const auto topo = tree_.topology_ptr();
  const Scenario base = tree_.scenario();
  const ServeResult result =
      dispatcher.submit(make_instance(topo, base, 0)).get();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("does not accept"), std::string::npos);
  EXPECT_EQ(dispatcher.stats().per_solver[0].errors, 1u);
  EXPECT_EQ(dispatcher.stats().completed, 1u);
}

TEST_F(DispatcherTest, SolverThrowResolvesWithError) {
  DispatcherConfig config;
  // power-sym rejects asymmetric cost models with a CheckError at solve
  // time; the dispatcher must surface it instead of crashing the worker.
  config.algos = {"power-sym"};
  config.threads = 1;
  SolveDispatcher dispatcher(config);

  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs({0.7, 0.1}, {0.01, 0.01},  // asymmetric create
                        {{0.0, 0.001}, {0.001, 0.0}});
  Instance instance{tree_.topology_ptr(), tree_.scenario(), modes, costs,
                    std::nullopt};
  const ServeResult result = dispatcher.submit(std::move(instance)).get();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("symmetric"), std::string::npos);
  EXPECT_EQ(dispatcher.stats().per_solver[0].errors, 1u);
}

TEST_F(DispatcherTest, SolverThreadsOptionPropagates) {
  DispatcherConfig config;
  config.algos = {"power-sym"};
  config.threads = 1;
  config.solver_threads = 4;
  SolveDispatcher dispatcher(config);
  EXPECT_EQ(dispatcher.solver().options().threads, 4);
}

}  // namespace
}  // namespace treeplace::serve
