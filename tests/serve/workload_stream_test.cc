// The diurnal workload engine driven through the serve stream format —
// the library-level twin of `treeplace workload | treeplace serve`.
//
// A DiurnalWorkload's delta batches are rendered as `treeplace-scenario`
// records (the grammar of serve/request_stream.h) and served by a
// StreamServer twice: once against the user-level skew tree, once against
// its Aggregation with each batch folded through map_deltas.  The two
// streams must agree on every objective value (cost, power, server
// count) — the aggregation exactness contract surfacing at the serving
// boundary — and the aggregate stream must be materially smaller.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "serve/stream_server.h"
#include "support/prng.h"
#include "tree/aggregate.h"
#include "tree/io.h"
#include "tree/scenario_delta.h"
#include "tree/tree.h"

namespace treeplace::serve {
namespace {

void print_delta_line(std::ostream& os, const ScenarioDelta& d) {
  switch (d.op) {
    case ScenarioDelta::Op::kSetRequests:
      os << "R " << d.node << " " << d.requests << "\n";
      break;
    case ScenarioDelta::Op::kSetPreExisting:
      os << "E " << d.node << " " << d.mode << "\n";
      break;
    case ScenarioDelta::Op::kClearPreExisting:
      os << "X " << d.node << "\n";
      break;
    case ScenarioDelta::Op::kClearAllPre:
      os << "Z\n";
      break;
  }
}

/// cost=...power=...servers= of each result line — placements are
/// compared via values, not node ids, because aggregation renumbers the
/// topology.  Out-param (not return) so ASSERT_NE can bail.
void objective_columns(const std::string& output,
                       std::vector<std::string>& values) {
  values = {};
  std::istringstream is(output);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("result ", 0) != 0) continue;
    const auto cost = line.find("cost=");
    const auto reused = line.find(" reused=");
    ASSERT_NE(cost, std::string::npos) << line;
    ASSERT_NE(reused, std::string::npos) << line;
    values.push_back(line.substr(cost, reused - cost));
  }
}

TEST(WorkloadStreamTest, AggregatedStreamServesIdenticalObjectiveValues) {
  SkewTreeConfig gen;
  gen.num_internal = 50;
  gen.num_users = 3000;
  Tree tree = generate_skew_tree(gen, /*seed=*/91, /*index=*/0);
  Aggregation aggregation(tree.topology_ptr());

  DiurnalConfig day;
  day.touch_fraction = 0.05;
  DiurnalWorkload workload(tree.topology_ptr(), day, Xoshiro256(92));

  std::ostringstream user_stream;
  std::ostringstream agg_stream;
  user_stream << serialize_tree(tree);
  agg_stream << serialize_tree(
      Tree(aggregation.aggregated(), aggregation.aggregate(tree.scenario())));

  std::size_t user_records = 0;
  std::size_t agg_records = 0;
  for (int tick = 0; tick < 4; ++tick) {
    DiurnalWorkload::Tick t = workload.next();
    for (const ScenarioDelta& d : t.deltas) apply_delta(tree.scenario(), d);
    user_stream << "treeplace-scenario v1 1\n";
    for (const ScenarioDelta& d : t.deltas) {
      print_delta_line(user_stream, d);
    }
    agg_stream << "treeplace-scenario v1 1\n";
    const std::vector<ScenarioDelta> mapped =
        aggregation.map_deltas(tree.scenario(), t.deltas);
    for (const ScenarioDelta& d : mapped) print_delta_line(agg_stream, d);
    user_records += t.deltas.size();
    agg_records += mapped.size();
  }
  // The fold is what makes million-user serving tractable: records per
  // tick bounded by touched attachment points, not touched users.
  EXPECT_LT(agg_records, user_records);

  StreamServerConfig config;
  config.dispatcher.algos = {"power-sym"};
  config.dispatcher.threads = 2;
  config.modes = ModeSet({40000, 80000}, 12.5, 3.0);
  config.costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  config.project_original_modes = false;

  std::istringstream user_in(user_stream.str());
  std::ostringstream user_out;
  const StreamServerSummary user_summary =
      StreamServer(config).serve(user_in, user_out);
  std::istringstream agg_in(agg_stream.str());
  std::ostringstream agg_out;
  const StreamServerSummary agg_summary =
      StreamServer(config).serve(agg_in, agg_out);

  EXPECT_EQ(user_summary.ok, 5u);  // base solve + 4 ticks
  EXPECT_EQ(agg_summary.ok, 5u);
  EXPECT_FALSE(user_summary.stream_error);
  EXPECT_FALSE(agg_summary.stream_error);

  std::vector<std::string> user_values;
  std::vector<std::string> agg_values;
  objective_columns(user_out.str(), user_values);
  objective_columns(agg_out.str(), agg_values);
  ASSERT_EQ(user_values.size(), 5u);
  EXPECT_EQ(user_values, agg_values);
}

}  // namespace
}  // namespace treeplace::serve
