// End-to-end serving-loop tests: mixed record streams in, ordered result
// records out, results bit-identical to offline solves for any pool size.
#include "serve/stream_server.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "solver/registry.h"
#include "tree/io.h"
#include "tree/tree.h"

namespace treeplace::serve {
namespace {

/// Fixed layout so delta records can target known ids: internal nodes
/// 0, 1, 2, 6; clients 3, 4, 5, 7.
Tree make_tree(RequestCount variant) {
  TreeBuilder b;
  const NodeId root = b.add_root();       // 0
  const NodeId a = b.add_internal(root);  // 1
  const NodeId c = b.add_internal(root);  // 2
  b.add_client(a, 5 + variant);           // 3
  b.add_client(a, 3);                     // 4
  b.add_client(c, 4);                     // 5
  const NodeId d = b.add_internal(c);     // 6
  b.add_client(d, 2 + variant);           // 7
  return std::move(b).build();
}

StreamServerConfig single_mode_config(std::size_t threads) {
  StreamServerConfig config;
  config.dispatcher.algos = {"update-dp"};
  config.dispatcher.threads = threads;
  config.modes = ModeSet::single(10);
  config.costs = CostModel::simple(0.1, 0.01);
  config.project_original_modes = true;
  return config;
}

/// A stream with two trees and delta requests against both.
std::string make_stream() {
  std::ostringstream out;
  out << serialize_tree(make_tree(0));
  out << serialize_tree(make_tree(1));
  out << "treeplace-scenario v1 1\nE 2\nE 6 0\n";
  out << "treeplace-scenario v1 2\nZ\nR 3 7\n";
  out << "treeplace-scenario v1 1\nE 2\nX 2\n";
  return out.str();
}

std::vector<std::string> result_lines(const std::string& output) {
  std::istringstream is(output);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("result ", 0) == 0) lines.push_back(line);
  }
  return lines;
}

TEST(StreamServerTest, ServesTreesAndDeltasInOrder) {
  std::istringstream in(make_stream());
  std::ostringstream out;
  StreamServer server(single_mode_config(2));
  const StreamServerSummary summary = server.serve(in, out);

  EXPECT_EQ(summary.requests, 5u);
  EXPECT_EQ(summary.ok, 5u);
  EXPECT_EQ(summary.errors, 0u);
  EXPECT_EQ(summary.cache.hits, 3u);

  const auto lines = result_lines(out.str());
  ASSERT_EQ(lines.size(), 5u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("id=" + std::to_string(i + 1) + " "),
              std::string::npos)
        << "out-of-order record: " << lines[i];
    EXPECT_NE(lines[i].find("status=ok"), std::string::npos);
  }
  // Requests 1 and 3 share topology "1", 2 and 4 topology "2".
  EXPECT_NE(lines[2].find("topo=1"), std::string::npos);
  EXPECT_NE(lines[3].find("topo=2"), std::string::npos);
}

TEST(StreamServerTest, OutputIdenticalForAnyPoolSize) {
  std::string serial_output;
  {
    std::istringstream in(make_stream());
    std::ostringstream out;
    StreamServer server(single_mode_config(1));
    server.serve(in, out);
    serial_output = out.str();
  }
  for (const std::size_t threads : {2u, 4u}) {
    std::istringstream in(make_stream());
    std::ostringstream out;
    StreamServer server(single_mode_config(threads));
    server.serve(in, out);
    // Result records (costs, placements, order) are bit-identical; only
    // the timing fields differ, so compare with timings stripped.
    const auto strip = [](const std::string& s) {
      std::istringstream is(s);
      std::string line;
      std::string kept;
      while (std::getline(is, line)) {
        if (line.rfind("result ", 0) != 0) continue;
        kept += line.substr(0, line.find(" queue_s="));
        kept += '\n';
      }
      return kept;
    };
    EXPECT_EQ(strip(out.str()), strip(serial_output)) << threads;
  }
}

TEST(StreamServerTest, DeltaSolveMatchesOfflineSolve) {
  // Request 3 marks nodes 2 and 6 of tree 1 pre-existing; the served
  // result must match solving the equivalent instance directly.
  std::istringstream in(make_stream());
  std::ostringstream out;
  StreamServer server(single_mode_config(2));
  server.serve(in, out);
  const auto lines = result_lines(out.str());
  ASSERT_EQ(lines.size(), 5u);

  Tree tree = make_tree(0);
  tree.set_pre_existing(2);
  tree.set_pre_existing(6);
  const auto solver = make_solver("update-dp");
  const Solution expected = solver->solve(
      Instance::single_mode(std::move(tree), 10, 0.1, 0.01));
  std::ostringstream expected_cost;
  expected_cost << "cost=" << expected.breakdown.cost;
  EXPECT_NE(lines[2].find(expected_cost.str()), std::string::npos)
      << lines[2] << " vs " << expected_cost.str();
}

TEST(StreamServerTest, UnknownTopologyKeyBecomesErrorRecord) {
  std::istringstream in("treeplace-scenario v1 9\nR 1 2\n" +
                        serialize_tree(make_tree(0)));
  std::ostringstream out;
  StreamServer server(single_mode_config(2));
  const StreamServerSummary summary = server.serve(in, out);

  EXPECT_EQ(summary.requests, 2u);
  EXPECT_EQ(summary.errors, 1u);
  EXPECT_EQ(summary.ok, 1u);
  const auto lines = result_lines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("status=error"), std::string::npos);
  EXPECT_NE(lines[0].find("unknown topology"), std::string::npos);
  EXPECT_NE(lines[1].find("status=ok"), std::string::npos);
}

TEST(StreamServerTest, BadDeltaTargetBecomesErrorRecord) {
  // Node 0 is the root (internal): R on it must fail that request only.
  std::istringstream in(serialize_tree(make_tree(0)) +
                        "treeplace-scenario v1 1\nR 0 5\n");
  std::ostringstream out;
  StreamServer server(single_mode_config(1));
  const StreamServerSummary summary = server.serve(in, out);
  EXPECT_EQ(summary.errors, 1u);
  EXPECT_EQ(summary.ok, 1u);
}

TEST(StreamServerTest, MultiModeServing) {
  StreamServerConfig config;
  config.dispatcher.algos = {"power-sym"};
  config.dispatcher.threads = 2;
  config.modes = ModeSet({5, 10}, 12.5, 3.0);
  config.costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  config.project_original_modes = false;

  std::istringstream in(serialize_tree(make_tree(0)) +
                        "treeplace-scenario v1 1\nE 2 1\n");
  std::ostringstream out;
  StreamServer server(std::move(config));
  const StreamServerSummary summary = server.serve(in, out);
  EXPECT_EQ(summary.ok, 2u);
  const auto lines = result_lines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("frontier="), std::string::npos);
}

TEST(StreamServerTest, DeltaRequestsRunWarmSessions) {
  // All five requests (two tree records, three delta records) route
  // through their topology's SolveSession: update-dp is incremental-
  // capable, so every solve counts as warm and the summary reports it.
  // No flags involved — sessions are automatic.
  std::istringstream in(make_stream());
  std::ostringstream out;
  StreamServer server(single_mode_config(2));
  const StreamServerSummary summary = server.serve(in, out);
  ASSERT_EQ(summary.dispatcher.per_solver.size(), 1u);
  EXPECT_EQ(summary.dispatcher.per_solver[0].warm, 5u);
  EXPECT_NE(out.str().find(" warm=5"), std::string::npos);
}

TEST(StreamServerTest, MalformedStreamStillFlushesResultsAndSummary) {
  // The stream dies mid-record after two good requests: everything already
  // dispatched is emitted in order, the summary block still prints, and
  // the failure is reported in summary.stream_error (the CLI maps it to a
  // nonzero exit).
  std::istringstream in(serialize_tree(make_tree(0)) +
                        "treeplace-scenario v1 1\nR 3 2\n"
                        "treeplace-scenario v1 1\nR 3 garbage\n");
  std::ostringstream out;
  StreamServer server(single_mode_config(2));
  const StreamServerSummary summary = server.serve(in, out);

  EXPECT_TRUE(summary.stream_error);
  EXPECT_FALSE(summary.stream_error_message.empty());
  EXPECT_EQ(summary.requests, 2u);
  EXPECT_EQ(summary.ok, 2u);
  const auto lines = result_lines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("id=1 "), std::string::npos);
  EXPECT_NE(lines[1].find("id=2 "), std::string::npos);
  EXPECT_NE(out.str().find("# serve: stream error:"), std::string::npos);
  EXPECT_NE(out.str().find("# solver update-dp:"), std::string::npos);
}

TEST(StreamServerTest, SummaryReportsLatencyStats) {
  std::istringstream in(make_stream());
  std::ostringstream out;
  StreamServer server(single_mode_config(2));
  const StreamServerSummary summary = server.serve(in, out);
  ASSERT_EQ(summary.dispatcher.per_solver.size(), 1u);
  EXPECT_EQ(summary.dispatcher.per_solver[0].solves, 5u);
  EXPECT_GT(summary.dispatcher.per_solver[0].total_solve_seconds, 0.0);
  EXPECT_NE(out.str().find("# solver update-dp:"), std::string::npos);
  EXPECT_NE(out.str().find("# cache:"), std::string::npos);
}

}  // namespace
}  // namespace treeplace::serve
