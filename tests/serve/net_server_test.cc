// End-to-end tests for the async TCP serving front-end: real loopback
// sockets against an in-process NetServer.  The contracts under test are
// the tentpole claims — per-connection result ordering, bit-identity with
// single-stream StreamServer, backpressure via read-masking when the
// dispatcher queue is full, graceful drain losing no in-flight result,
// and both poller backends serving identically.
#include "serve/net_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/stream_server.h"
#include "tree/io.h"
#include "tree/tree.h"

namespace treeplace::serve {
namespace {

/// Same fixed layout as the stream-server tests: internal nodes 0, 1, 2, 6;
/// clients 3, 4, 5, 7.
Tree make_tree(RequestCount variant) {
  TreeBuilder b;
  const NodeId root = b.add_root();       // 0
  const NodeId a = b.add_internal(root);  // 1
  const NodeId c = b.add_internal(root);  // 2
  b.add_client(a, 5 + variant);           // 3
  b.add_client(a, 3);                     // 4
  b.add_client(c, 4);                     // 5
  const NodeId d = b.add_internal(c);     // 6
  b.add_client(d, 2 + variant);           // 7
  return std::move(b).build();
}

StreamServerConfig single_mode_config(std::size_t threads) {
  StreamServerConfig config;
  config.dispatcher.algos = {"update-dp"};
  config.dispatcher.threads = threads;
  config.modes = ModeSet::single(10);
  config.costs = CostModel::simple(0.1, 0.01);
  config.project_original_modes = true;
  return config;
}

/// One tree plus deltas — the per-connection conversation.
std::string make_stream(RequestCount variant = 0) {
  std::ostringstream out;
  out << serialize_tree(make_tree(variant));
  out << "treeplace-scenario v1 1\nE 2\nE 6 0\n";
  out << "treeplace-scenario v1 1\nZ\nR 3 7\n";
  out << "treeplace-scenario v1 1\nE 2\nX 2\n";
  return out.str();
}

/// What StreamServer emits for `stream`, result lines only, timings
/// stripped — the bit-identity reference for one connection.
std::string stream_reference(const std::string& stream) {
  std::istringstream in(stream);
  std::ostringstream out;
  StreamServer server(single_mode_config(2));
  server.serve(in, out);
  std::istringstream lines(out.str());
  std::string line;
  std::string results;
  while (std::getline(lines, line)) {
    if (line.rfind("result ", 0) == 0) results += line + "\n";
  }
  return strip_timings(results);
}

// ---------------------------------------------------------------------------
// Blocking loopback client helpers (the test is the client; the server
// under test is the nonblocking side).

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << "connect: " << strerror(errno);
  return fd;
}

void send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0) << "send: " << strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

std::string recv_to_eof(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// A NetServer running its loop on a background thread.
class RunningServer {
 public:
  explicit RunningServer(NetServerConfig config) : server_(std::move(config)) {
    port_ = server_.listen_and_bind();
    thread_ = std::thread([this] { summary_ = server_.run(summary_out_); });
  }
  ~RunningServer() {
    if (thread_.joinable()) stop();
  }

  NetServerSummary stop() {
    server_.shutdown();
    thread_.join();
    return summary_;
  }

  std::uint16_t port() const { return port_; }
  NetServer& server() { return server_; }

 private:
  NetServer server_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::ostringstream summary_out_;
  NetServerSummary summary_;
};

NetServerConfig net_config(std::size_t threads, std::size_t cache_capacity) {
  NetServerConfig config;
  config.stream = single_mode_config(threads);
  config.stream.cache_capacity = cache_capacity;
  return config;
}

std::vector<std::string> result_lines(const std::string& output) {
  std::istringstream is(output);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("result ", 0) == 0) lines.push_back(line);
  }
  return lines;
}

// ---------------------------------------------------------------------------

TEST(NetServerTest, SingleConnectionBitIdenticalToStreamServer) {
  const std::string stream = make_stream();
  RunningServer running(net_config(2, 8));

  const int fd = connect_loopback(running.port());
  send_all(fd, stream);
  ::shutdown(fd, SHUT_WR);  // half-close: end of this client's records
  const std::string received = recv_to_eof(fd);
  ::close(fd);

  EXPECT_EQ(strip_timings(received), stream_reference(stream));

  const NetServerSummary summary = running.stop();
  EXPECT_EQ(summary.accepted, 1u);
  EXPECT_EQ(summary.requests, 4u);
  EXPECT_EQ(summary.ok, 4u);
  EXPECT_EQ(summary.protocol_errors, 0u);
  EXPECT_EQ(summary.dispatcher.per_solver[0].warm, 4u);
  EXPECT_GT(summary.bytes_in, 0u);
  EXPECT_GT(summary.bytes_out, 0u);
}

TEST(NetServerTest, ManyConcurrentConnectionsStayOrderedAndIdentical) {
  // 64 simultaneously open connections, three stream variants.  Every
  // connection must receive exactly what a fresh single-stream server
  // would emit for its own records — per-connection ordinal topo keys,
  // per-connection result order — no matter how solves interleave.
  constexpr int kConns = 64;
  RunningServer running(net_config(4, kConns + 4));

  std::string streams[3];
  std::string references[3];
  for (int v = 0; v < 3; ++v) {
    streams[v] = make_stream(static_cast<RequestCount>(v));
    references[v] = stream_reference(streams[v]);
  }

  std::vector<int> fds(kConns);
  for (int i = 0; i < kConns; ++i) fds[i] = connect_loopback(running.port());
  // All sockets are open before any byte is sent: peak concurrency kConns.
  for (int i = 0; i < kConns; ++i) {
    send_all(fds[i], streams[i % 3]);
    ::shutdown(fds[i], SHUT_WR);
  }
  for (int i = 0; i < kConns; ++i) {
    const std::string received = recv_to_eof(fds[i]);
    EXPECT_EQ(strip_timings(received), references[i % 3]) << "conn " << i;
    ::close(fds[i]);
  }

  const NetServerSummary summary = running.stop();
  EXPECT_EQ(summary.accepted, static_cast<std::uint64_t>(kConns));
  EXPECT_EQ(summary.requests, static_cast<std::uint64_t>(kConns) * 4u);
  EXPECT_EQ(summary.ok, summary.requests);
  EXPECT_EQ(summary.errors, 0u);
}

TEST(NetServerTest, FullDispatcherQueueMasksReadsInsteadOfBuffering) {
  // One worker, queue capacity 1, one client pipelining 200 requests in a
  // single burst.  The loop must stop reading the socket whenever parsed
  // records are waiting on the queue — bounded memory — and still deliver
  // every result, in order.
  NetServerConfig config = net_config(1, 4);
  config.stream.dispatcher.threads = 1;
  config.stream.dispatcher.queue_capacity = 1;
  // A small read chunk so the burst spans many loop iterations.
  config.read_chunk = 512;
  RunningServer running(config);

  constexpr int kDeltas = 200;
  std::string stream = make_stream();
  for (int i = 0; i < kDeltas; ++i) {
    stream += "treeplace-scenario v1 1\nR 3 " + std::to_string(3 + i % 3) +
              "\n";
  }

  const int fd = connect_loopback(running.port());
  send_all(fd, stream);
  ::shutdown(fd, SHUT_WR);
  const std::string received = recv_to_eof(fd);
  ::close(fd);

  const auto lines = result_lines(received);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kDeltas) + 4u);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_NE(lines[i].find("id=" + std::to_string(i + 1) + " "),
              std::string::npos)
        << "out of order at " << i << ": " << lines[i];
  }

  const NetServerSummary summary = running.stop();
  EXPECT_EQ(summary.requests, static_cast<std::uint64_t>(kDeltas) + 4u);
  EXPECT_EQ(summary.ok + summary.infeasible, summary.requests);
  EXPECT_EQ(summary.errors, 0u);
  // The queue was genuinely full at least once (in practice: constantly).
  EXPECT_GT(summary.backpressure_stalls, 0u);
}

TEST(NetServerTest, GracefulDrainLosesNoInFlightResult) {
  // The client never half-closes; shutdown() arrives while requests are in
  // flight.  Drain must flush every submitted result to the socket before
  // closing it.
  RunningServer running(net_config(2, 8));

  const int fd = connect_loopback(running.port());
  // A record is only completed by the next header or EOF; the extra bare
  // header terminates record 4 without half-closing, leaving record 5
  // permanently in progress — drain must flush results 1-4 and is free to
  // discard the unfinished record 5.
  send_all(fd, make_stream() + "treeplace-scenario v1 1\n");
  // Give the loop time to read and submit the records, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  running.server().shutdown();

  const std::string received = recv_to_eof(fd);  // EOF = server closed
  ::close(fd);
  EXPECT_EQ(strip_timings(received), stream_reference(make_stream()));

  const NetServerSummary summary = running.stop();
  EXPECT_EQ(summary.requests, 4u);
  EXPECT_EQ(summary.ok, 4u);
  EXPECT_FALSE(summary.drain_timed_out);
}

TEST(NetServerTest, IdleConnectionsAreReaped) {
  NetServerConfig config = net_config(1, 4);
  config.idle_timeout_seconds = 0.05;
  RunningServer running(config);

  const int fd = connect_loopback(running.port());
  // Never send a byte: the server must close it for us.
  const std::string received = recv_to_eof(fd);
  ::close(fd);
  EXPECT_TRUE(received.empty());

  const NetServerSummary summary = running.stop();
  EXPECT_EQ(summary.accepted, 1u);
  EXPECT_EQ(summary.reaped_idle, 1u);
}

TEST(NetServerTest, ProtocolErrorFailsThatConnectionOnly) {
  RunningServer running(net_config(2, 8));

  const int bad = connect_loopback(running.port());
  send_all(bad, "this is not a record\n");
  ::shutdown(bad, SHUT_WR);
  const std::string bad_received = recv_to_eof(bad);
  ::close(bad);
  EXPECT_NE(bad_received.find("# protocol error:"), std::string::npos);

  // A well-behaved connection afterwards is unaffected.
  const int good = connect_loopback(running.port());
  send_all(good, make_stream());
  ::shutdown(good, SHUT_WR);
  const std::string good_received = recv_to_eof(good);
  ::close(good);
  EXPECT_EQ(strip_timings(good_received), stream_reference(make_stream()));

  const NetServerSummary summary = running.stop();
  EXPECT_EQ(summary.protocol_errors, 1u);
  EXPECT_EQ(summary.ok, 4u);
}

TEST(NetServerTest, PollBackendServesIdentically) {
  // Force the portable poll() backend through the env knob the Poller
  // factory reads; restore epoll (the default) afterwards.
  ::setenv("TREEPLACE_POLLER", "poll", 1);
  const std::string stream = make_stream(1);
  std::string received;
  {
    RunningServer running(net_config(2, 8));
    const int fd = connect_loopback(running.port());
    send_all(fd, stream);
    ::shutdown(fd, SHUT_WR);
    received = recv_to_eof(fd);
    ::close(fd);
    running.stop();
  }
  ::unsetenv("TREEPLACE_POLLER");
  EXPECT_EQ(strip_timings(received), stream_reference(stream));
}

TEST(NetServerTest, ArmTcpKeepaliveSetsAllFourSocketOptions) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(arm_tcp_keepalive(fd, 75));

  int value = 0;
  socklen_t len = sizeof(value);
  ASSERT_EQ(::getsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &value, &len), 0);
  EXPECT_NE(value, 0);
  len = sizeof(value);
  ASSERT_EQ(::getsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &value, &len), 0);
  EXPECT_EQ(value, 75);
  len = sizeof(value);
  ASSERT_EQ(::getsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &value, &len), 0);
  EXPECT_EQ(value, 25);  // max(1, 75 / 3)
  len = sizeof(value);
  ASSERT_EQ(::getsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &value, &len), 0);
  EXPECT_EQ(value, 3);
  ::close(fd);

  // Sub-3-second idle clamps the probe interval to 1, never 0.
  const int fast = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fast, 0);
  EXPECT_TRUE(arm_tcp_keepalive(fast, 2));
  len = sizeof(value);
  ASSERT_EQ(::getsockopt(fast, IPPROTO_TCP, TCP_KEEPINTVL, &value, &len), 0);
  EXPECT_EQ(value, 1);
  ::close(fast);
}

TEST(NetServerTest, ArmTcpKeepaliveIsBestEffortOnBadInput) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  EXPECT_FALSE(arm_tcp_keepalive(fd, 0));   // disabled: no-op, reports false
  EXPECT_FALSE(arm_tcp_keepalive(fd, -5));  // negative idle never armed
  ::close(fd);
  EXPECT_FALSE(arm_tcp_keepalive(-1, 60));  // bad fd: false, no throw
}

TEST(NetServerTest, KeepaliveConfigArmsAcceptedSockets) {
  NetServerConfig config = net_config(2, 8);
  config.keepalive_seconds = 120;
  RunningServer running(config);

  const int fd = connect_loopback(running.port());
  const std::string stream = make_stream();
  send_all(fd, stream);
  ::shutdown(fd, SHUT_WR);
  // Keepalive hardening must not perturb the served bytes.
  const std::string received = recv_to_eof(fd);
  ::close(fd);
  EXPECT_EQ(strip_timings(received), stream_reference(stream));
  running.stop();
}

}  // namespace
}  // namespace treeplace::serve
