// Ablation A: how much do the subtree-size-bounded DP tables save over the
// paper's unbounded O(N·(N-E+1)²·(E+1)²) loop structure?
//
// We count the merge-loop iterations the bounded implementation actually
// executes and compare with the iteration count the paper's pseudo-code
// (Algorithm 3, full-range loops at every node) would perform.
#include "bench/bench_util.h"
#include "core/dp_update.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"

using namespace treeplace;

int main() {
  bench::banner("Ablation A — bounded vs unbounded DP table ranges",
                "iterations executed vs the paper's worst-case loop count");

  Stopwatch total;
  Table table({"shape", "N", "E", "bounded_iters", "paper_iters", "speedup"});
  table.set_title("MinCost-WithPre merge-loop iteration counts");

  const std::size_t trees = env_size_t("TREEPLACE_TREES", 5);
  for (const auto& [shape_name, shape] :
       std::vector<std::pair<std::string, TreeShape>>{{"fat", kFatShape},
                                                      {"high", kHighShape}}) {
    for (const int n : {50, 100, 200}) {
      for (const int e : {0, n / 10, n / 4, n / 2}) {
        double bounded = 0;
        for (std::uint64_t t = 0; t < trees; ++t) {
          TreeGenConfig config;
          config.num_internal = n;
          config.shape = shape;
          Tree tree = generate_tree(config, 77 + t, t);
          Xoshiro256 rng = make_rng(77, t, RngStream::kPreExisting);
          assign_random_pre_existing(tree, static_cast<std::size_t>(e), rng);
          const MinCostResult r =
              solve_min_cost_with_pre(tree, MinCostConfig{10, 0.1, 0.01});
          TREEPLACE_CHECK(r.feasible);
          bounded += static_cast<double>(r.merge_iterations);
        }
        bounded /= static_cast<double>(trees);
        // Paper Algorithm 3: every one of the N merge calls loops over the
        // full (e, n, e', n') ranges.
        const double paper = static_cast<double>(n) *
                             static_cast<double>(n - e + 1) *
                             static_cast<double>(n - e + 1) *
                             static_cast<double>(e + 1) *
                             static_cast<double>(e + 1);
        table.add_row({shape_name, static_cast<std::int64_t>(n),
                       static_cast<std::int64_t>(e), bounded, paper,
                       paper / std::max(1.0, bounded)});
      }
    }
  }
  bench::emit(table, "ablation_bounds", total.seconds());
  return 0;
}
