// One simulated day of diurnal traffic against a warm serving session at
// million-node scale.
//
// The acceptance shape of the aggregation + compact-encoding work: a skew
// tree with N=1e5 users (Zipf-attached to a few hundred internal nodes)
// is collapsed through an Aggregation, a DiurnalWorkload streams delta
// batches over the *user-level* scenario, Aggregation::map_deltas folds
// each batch into attachment-point records, and one persistent
// SolveSession absorbs the whole day of warm power-sym re-solves.  The
// table reports scenarios/sec, p50/p99 tick latency, the peak resident
// session bytes over the day, and the end-of-day packed/unpacked ratio —
// the resident-byte reduction the narrow-cell + dead-run encodings buy.
//
// Two hard gates run in-bench (non-zero exit on failure):
//   * the small `verify` configuration re-solves every tick cold on the
//     un-aggregated tree and demands bit-identical placements (after
//     Aggregation::expand), costs and powers — the exactness contract;
//   * the large configuration's compact() must cut resident bytes >= 2x.
//
// The JSON written for the CI bench-diff gate contains only deterministic
// columns (delta counts, DP work, lazy-join splice counters, the gate
// flags); throughput, latency and byte columns stay in the CSV/stdout.
// Knobs: TREEPLACE_DAY_USERS / TREEPLACE_DAY_TICKS / TREEPLACE_DAY_INTERNAL
// override the big configuration, --out DIR / TREEPLACE_BENCH_DIR route
// file output.
#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "solver/registry.h"
#include "solver/session.h"
#include "support/prng.h"
#include "tree/aggregate.h"
#include "tree/scenario_delta.h"

using namespace treeplace;

namespace {

constexpr const char* kAlgo = "power-sym";

struct DayConfig {
  std::string label;
  int num_internal = 0;
  std::size_t num_users = 0;
  std::size_t ticks = 0;
  std::size_t num_pre_existing = 0;
  bool verify_against_original = false;  ///< cold original solve per tick
  bool gate_pack_ratio = false;          ///< demand >= 2x compaction
  /// Frozen-subtree contraction (SolveSession::Options::contract) for the
  /// serving session.  Contracted rows run a *sparse* day (touch_fraction
  /// below): contraction fires when the per-tick dirty set stays within
  /// the delta fast-path gate, which a 2%-of-users day exceeds on the
  /// aggregated tree.  Gated on subtrees_sealed > 0 and the same
  /// bit-identity column as every other row.
  bool contract = false;
  double touch_fraction = 0.02;  ///< DiurnalConfig::touch_fraction
};

struct DayResult {
  std::size_t user_deltas = 0;  ///< user-level delta records streamed
  std::size_t agg_deltas = 0;   ///< records after map_deltas folding
  std::uint64_t warm_work = 0;
  std::uint64_t cells_skipped = 0;
  double cold_seconds = 0.0;  ///< the one priming solve
  double warm_seconds = 0.0;  ///< sum over all ticks
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t peak_bytes = 0;      ///< max resident over the day (unpacked)
  std::size_t unpacked_bytes = 0;  ///< end-of-day, before compact()
  std::size_t packed_bytes = 0;    ///< end-of-day, after compact()
  bool identical = true;  ///< verify config: aggregated == original
  bool pack_ok = true;    ///< gated config: ratio >= 2x
  std::uint64_t subtrees_sealed = 0;  ///< contraction builds over the day
};

double percentile_ms(std::vector<double> seconds, double p) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(seconds.size() - 1) + 0.5);
  return seconds[std::min(idx, seconds.size() - 1)] * 1e3;
}

/// Capacities sized so the hottest Zipf attachment point (and the root's
/// total mass, up to max_requests x flash_magnitude per user) stays
/// absorbable; capacities do not enter the DP table dimensions, so large
/// values cost nothing (see src/model/modes.h).
Instance make_instance(const std::shared_ptr<const Topology>& topology,
                       const Scenario& scenario) {
  const ModeSet modes({4000000, 8000000}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  return Instance{topology, scenario, modes, costs, std::nullopt};
}

DayResult run_day(const DayConfig& config) {
  SkewTreeConfig gen;
  gen.num_internal = config.num_internal;
  gen.num_users = config.num_users;
  Tree tree = generate_skew_tree(gen, /*seed=*/7001, /*index=*/0);
  if (config.num_pre_existing > 0) {
    Xoshiro256 pre_rng = make_rng(7001, 0, RngStream::kPreExisting);
    assign_random_pre_existing(tree, config.num_pre_existing, pre_rng,
                               /*num_modes=*/2);
  }

  Aggregation aggregation(tree.topology_ptr());
  Scenario agg_scenario = aggregation.aggregate(tree.scenario());
  const auto warm_solver = make_solver(kAlgo);
  const auto cold_solver = make_solver(kAlgo);
  SolveSession::Options session_options;
  if (config.contract) {
    session_options.contract = true;
    session_options.contract_min_internal = 32;
    session_options.contract_min_shrink = 2;
  }
  SolveSession session(aggregation.aggregated(), session_options);

  DayResult r;
  Stopwatch cold_watch;
  const Solution primed = warm_solver->solve_incremental(
      make_instance(aggregation.aggregated(), agg_scenario), {}, session);
  r.cold_seconds = cold_watch.seconds();
  if (!primed.feasible) {
    r.identical = false;
    return r;
  }
  const std::uint64_t primed_work = primed.stats.work;
  const std::uint64_t skipped_base = session.stats().cells_skipped;

  DiurnalConfig diurnal;
  diurnal.touch_fraction = config.touch_fraction;
  DiurnalWorkload workload(tree.topology_ptr(), diurnal, Xoshiro256(7002));

  std::vector<double> latencies;
  latencies.reserve(config.ticks);
  for (std::size_t tick = 0; tick < config.ticks; ++tick) {
    DiurnalWorkload::Tick t = workload.next();
    for (const ScenarioDelta& d : t.deltas) apply_delta(tree.scenario(), d);
    const std::vector<ScenarioDelta> mapped =
        aggregation.map_deltas(tree.scenario(), t.deltas);
    for (const ScenarioDelta& d : mapped) apply_delta(agg_scenario, d);
    r.user_deltas += t.deltas.size();
    r.agg_deltas += mapped.size();

    const Instance instance =
        make_instance(aggregation.aggregated(), agg_scenario);
    Stopwatch tick_watch;
    const Solution warm =
        warm_solver->solve_incremental(instance, mapped, session);
    latencies.push_back(tick_watch.seconds());
    r.warm_seconds += latencies.back();
    r.warm_work += warm.stats.work;
    r.peak_bytes = std::max(r.peak_bytes, session.resident_bytes());

    if (config.verify_against_original && r.identical) {
      const Solution cold =
          cold_solver->solve(make_instance(tree.topology_ptr(),
                                           tree.scenario()));
      const Placement expanded = aggregation.expand(warm.placement);
      if (warm.feasible != cold.feasible || !(expanded == cold.placement) ||
          (cold.feasible && (warm.breakdown.cost != cold.breakdown.cost ||
                             warm.power != cold.power))) {
        r.identical = false;
      }
    }
  }
  r.warm_work += primed_work;  // the chain includes its priming solve
  r.cells_skipped = session.stats().cells_skipped - skipped_base;
  r.p50_ms = percentile_ms(latencies, 0.50);
  r.p99_ms = percentile_ms(latencies, 0.99);
  r.unpacked_bytes = session.resident_bytes();
  r.packed_bytes = session.compact();
  r.subtrees_sealed = session.stats().subtrees_sealed;
  if (config.gate_pack_ratio) {
    r.pack_ok = r.packed_bytes * 2 <= r.unpacked_bytes;
  }
  return r;
}

void add_result(Table& table, Table& gate, const DayConfig& config,
                const DayResult& r) {
  const double scen_per_sec =
      r.warm_seconds > 0.0
          ? static_cast<double>(config.ticks) / r.warm_seconds
          : 0.0;
  const double ratio =
      r.packed_bytes > 0 ? static_cast<double>(r.unpacked_bytes) /
                               static_cast<double>(r.packed_bytes)
                         : 0.0;
  const std::string identical = r.identical ? "yes" : "NO";
  const std::string pack_ok = r.pack_ok ? "yes" : "NO";
  table.add_row({config.label, static_cast<std::int64_t>(config.num_users),
                 static_cast<std::int64_t>(config.ticks),
                 static_cast<std::int64_t>(r.user_deltas),
                 static_cast<std::int64_t>(r.agg_deltas),
                 static_cast<std::int64_t>(r.warm_work),
                 static_cast<std::int64_t>(r.cells_skipped), scen_per_sec,
                 r.p50_ms, r.p99_ms,
                 static_cast<double>(r.peak_bytes) / 1048576.0,
                 static_cast<double>(r.packed_bytes) / 1048576.0, ratio,
                 static_cast<std::int64_t>(r.subtrees_sealed), identical,
                 pack_ok});
  gate.add_row({config.label, static_cast<std::int64_t>(config.num_users),
                static_cast<std::int64_t>(config.ticks),
                static_cast<std::int64_t>(r.user_deltas),
                static_cast<std::int64_t>(r.agg_deltas),
                static_cast<std::int64_t>(r.warm_work),
                static_cast<std::int64_t>(r.cells_skipped),
                static_cast<std::int64_t>(r.subtrees_sealed), identical,
                pack_ok});
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_args(argc, argv);
  bench::banner(
      "day serve — a simulated day of diurnal traffic at N=1e5 users",
      "hierarchical aggregation + warm power-sym re-solves per delta "
      "batch; gates: aggregated solves bit-identical to un-aggregated, "
      "compact() cuts resident session bytes >= 2x");

  const std::vector<DayConfig> configs = {
      // The exactness gate: small enough to cold-solve the un-aggregated
      // tree every tick alongside the aggregated warm path.
      {"verify_N4k", 60, 4000, 20, /*num_pre_existing=*/10,
       /*verify_against_original=*/true, /*gate_pack_ratio=*/false},
      // The headline row: one day at 1e5 users, compaction gated.
      {"day_N1e5",
       static_cast<int>(env_size_t("TREEPLACE_DAY_INTERNAL", 400)),
       env_size_t("TREEPLACE_DAY_USERS", 100000),
       env_size_t("TREEPLACE_DAY_TICKS",
                  scaled<std::size_t>(96, 288)),
       /*num_pre_existing=*/0, /*verify_against_original=*/false,
       /*gate_pack_ratio=*/true},
      // Contracted twins of both rows on a *sparse* day (a tick touches a
      // handful of users, the serving regime frozen-subtree contraction
      // targets): the warm session solves each tick on a tree the size of
      // the dirty region.  The verify twin keeps the per-tick cold solve
      // of the un-aggregated original, so zero objective drift under
      // contraction is gated exactly like aggregation exactness is.
      {"verify_N4k_contract", 60, 4000, 20, /*num_pre_existing=*/10,
       /*verify_against_original=*/true, /*gate_pack_ratio=*/false,
       /*contract=*/true, /*touch_fraction=*/0.001},
      {"day_N1e5_contract",
       static_cast<int>(env_size_t("TREEPLACE_DAY_INTERNAL", 400)),
       env_size_t("TREEPLACE_DAY_USERS", 100000),
       env_size_t("TREEPLACE_DAY_TICKS",
                  scaled<std::size_t>(96, 288)),
       /*num_pre_existing=*/0, /*verify_against_original=*/false,
       /*gate_pack_ratio=*/true, /*contract=*/true,
       /*touch_fraction=*/0.0002},
  };

  Table table({"config", "users", "ticks", "user_deltas", "agg_deltas",
               "warm_work", "cells_skipped", "scen_per_sec", "p50_ms",
               "p99_ms", "peak_mb", "packed_mb", "pack_ratio",
               "subtrees_sealed", "identical", "pack_ok"});
  table.set_title("Simulated day over a warm serving session");
  Table gate({"config", "users", "ticks", "user_deltas", "agg_deltas",
              "warm_work", "cells_skipped", "subtrees_sealed", "identical",
              "pack_ok"});
  gate.set_title("day_serve (deterministic columns)");

  Stopwatch total;
  std::vector<std::string> failures;
  for (const DayConfig& config : configs) {
    const DayResult r = run_day(config);
    if (!r.identical) {
      failures.push_back("config " + config.label +
                         ": aggregated solve diverged from the "
                         "un-aggregated solve");
    }
    if (!r.pack_ok) {
      failures.push_back("config " + config.label + ": compact() ratio " +
                         std::to_string(r.unpacked_bytes) + "/" +
                         std::to_string(r.packed_bytes) + " below 2x");
    }
    if (config.contract && r.subtrees_sealed == 0) {
      failures.push_back("config " + config.label +
                         ": contraction never fired (subtrees_sealed == 0)");
    }
    add_result(table, gate, config, r);
  }

  bench::emit(table, "day_serve", total.seconds());
  const std::string json_path = bench::out_path("BENCH_day_serve.json");
  gate.save_json(json_path);
  std::cout << "\n(JSON written to " << json_path << ")\n";
  if (!failures.empty()) {
    std::cout << "FAIL:\n";
    for (const std::string& failure : failures) {
      std::cout << "  " << failure << "\n";
    }
    return 1;
  }
  std::cout << "aggregated solves bit-identical; compaction >= 2x on the "
               "gated row\n";
  return 0;
}
