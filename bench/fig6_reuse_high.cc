// Figure 6: Experiment 1 re-run on high trees (2-4 children per node).
// Same protocol as Figure 4; the paper reports the same qualitative
// behaviour with a higher reuse level (deeper trees need more servers).
#include "bench/bench_util.h"
#include "sim/experiment1.h"
#include "support/stats.h"

using namespace treeplace;

int main() {
  bench::banner("Figure 6 — reuse vs pre-existing servers (high trees)",
                "Experiment 1 on trees with 2-4 children per node");

  Experiment1Config config;
  config.num_trees = env_size_t("TREEPLACE_TREES", 200);
  config.tree.num_internal = 100;
  config.tree.shape = kHighShape;
  config.tree.client_probability = 0.5;
  config.tree.min_requests = 1;
  config.tree.max_requests = 6;
  config.capacity = 10;
  const std::size_t step = env_size_t("TREEPLACE_E_STEP",
                                      5);
  config.pre_existing_counts = bench::size_range(0, 100, step);
  config.create = 0.1;
  config.delete_cost = 0.01;
  config.seed = env_size_t("TREEPLACE_SEED", 46);

  Stopwatch watch;
  const auto rows = run_experiment1(config);

  Table table({"E", "reused_DP", "reused_GR", "DP_minus_GR", "servers"});
  table.set_title("Figure 6 series (" + std::to_string(config.num_trees) +
                  " high trees, N=100, W=10)");
  for (const auto& r : rows) {
    table.add_row({static_cast<std::int64_t>(r.num_pre_existing), r.reused_dp,
                   r.reused_gr, r.reused_dp - r.reused_gr, r.servers_dp});
  }
  bench::emit(table, "fig6_reuse_high", watch.seconds());
  return 0;
}
