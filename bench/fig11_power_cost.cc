// Figure 11: Experiment 3 with expensive reconfiguration costs
// (create = delete = 1, changed = 0.1), bounds swept over [30, 90].
//
// Paper: "the ratio between DP and GR is better for lowest cost, because GR
// finds less solutions than DP.  DP indeed can find solutions with lower
// cost, taking pre-existing replicas into account."
#include "bench/power_fig_util.h"

using namespace treeplace;

int main() {
  bench::banner("Figure 11 — power minimization with expensive updates",
                "Experiment 3 with create=delete=1, changed=0.1");

  Experiment3Config config;
  config.num_trees = env_size_t("TREEPLACE_TREES", 100);
  config.tree.num_internal = 50;
  config.tree.shape = kFatShape;
  config.tree.client_probability =
      env_double("TREEPLACE_CLIENT_PROB", 0.8);  // calibrated, see DESIGN.md
  config.tree.min_requests = 1;
  config.tree.max_requests = 5;
  config.num_pre_existing = 5;
  config.mode_capacities = {5, 10};
  config.static_power = 12.5;
  config.alpha = 3.0;
  config.cost_create = 1.0;
  config.cost_delete = 1.0;
  config.cost_changed = 0.1;
  const double step = env_double("TREEPLACE_BOUND_STEP", 2.0);
  config.cost_bounds = bench::double_range(30, 90, step);
  config.seed = env_size_t("TREEPLACE_SEED", 49);

  bench::run_power_figure("Figure 11", "fig11_power_cost", config, 30, 50);
  return 0;
}
