// Shared driver for the power-minimization figures (8-11): runs
// Experiment 3 with the given configuration and prints the paper's series
// (normalized inverse power vs cost bound) plus the GR/DP power ratio the
// paper's ">30% more power" claims refer to.
#pragma once

#include <string>

#include "bench/bench_util.h"
#include "sim/experiment3.h"
#include "support/stats.h"

namespace treeplace::bench {

inline void run_power_figure(const std::string& figure,
                             const std::string& csv_name,
                             const Experiment3Config& config,
                             double claim_lo, double claim_hi) {
  Stopwatch watch;
  const Experiment3Result result = run_experiment3(config);

  Table table({"cost_bound", "power_inverse_DP", "power_inverse_GR",
               "solved_DP", "solved_GR", "GR_over_DP_power", "both_solved"});
  table.set_title(figure + " series (" + std::to_string(config.num_trees) +
                  " trees, N=" + std::to_string(config.tree.num_internal) +
                  ", E=" + std::to_string(config.num_pre_existing) + ")");
  RunningStats claim_ratio;
  for (const auto& row : result.rows) {
    table.add_row({row.cost_bound, row.score_dp, row.score_gr, row.solved_dp,
                   row.solved_gr, row.power_ratio,
                   static_cast<std::int64_t>(row.both_solved)});
    if (row.cost_bound >= claim_lo - 1e-9 && row.cost_bound <= claim_hi + 1e-9 &&
        row.both_solved > 0) {
      claim_ratio.add(row.power_ratio);
    }
  }
  emit(table, csv_name, watch.seconds());
  if (claim_ratio.count() > 0) {
    std::cout << "mean GR/DP power ratio for bounds in [" << claim_lo << ", "
              << claim_hi << "]: " << claim_ratio.mean()
              << " (GR consumes " << (claim_ratio.mean() - 1.0) * 100.0
              << "% more power than DP)\n";
  }
  std::cout << "mean DP solve time per tree: " << result.mean_dp_seconds
            << " s\n";
}

}  // namespace treeplace::bench
