// Shard-restart bench: persistent warm sessions across server restarts,
// and result bit-identity across shard counts.
//
// Phase 1 (restart): a named client ("alice") publishes a 31-internal-node
// tree and sends one delta against it on a live server, recording the cold
// and warm `work=` counters from its result lines.  A second named client
// ("bob") publishes the same tree and stops.  The server shuts down —
// snapshotting both named sessions to disk — and a fresh server is stood
// up over the same persist directory.  Bob reconnects, republishes its
// tree (the snapshot restores into the fresh session) and sends the same
// delta alice did.  The gate: bob's post-restart warm solve reports work
// *bit-identical* to alice's never-restarted warm solve — the restored
// session resumes exactly where the in-memory one would have been — and
// strictly below the cold solve's work.
//
// Phase 2 (sharding): 64 concurrent connections run the connection-churn
// conversation against `--shards 1` and `--shards 4` servers; every
// connection's bytes must be bit-identical (timings stripped) to what the
// single-stream StreamServer emits, so the shard count is invisible in
// results.
//
// The CI-gated JSON holds only deterministic columns: the work counters,
// the identity flags, and the snapshot save/restore counts.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/net_server.h"
#include "serve/stream_server.h"
#include "tree/io.h"
#include "tree/tree.h"

using namespace treeplace;
using namespace treeplace::serve;

namespace {

/// A complete binary tree of 31 internal nodes (ids 0..30) with two
/// clients under each of the 16 deepest internals — big enough that warm
/// re-solves of a two-node delta do measurably less work than cold.
Tree make_tree() {
  TreeBuilder b;
  std::vector<NodeId> level{b.add_root()};
  for (int depth = 0; depth < 4; ++depth) {
    std::vector<NodeId> next;
    for (const NodeId parent : level) {
      next.push_back(b.add_internal(parent));
      next.push_back(b.add_internal(parent));
    }
    level = std::move(next);
  }
  for (const NodeId parent : level) {
    b.add_client(parent, 3);
    b.add_client(parent, 2);
  }
  return std::move(b).build();
}

StreamServerConfig serve_config() {
  StreamServerConfig config;
  config.dispatcher.algos = {"update-dp"};
  config.modes = ModeSet::single(10);
  config.costs = CostModel::simple(0.1, 0.01);
  config.project_original_modes = true;
  return config;
}

/// The delta both alice (live) and bob (after restart) solve: two
/// pre-existing servers deep in different subtrees.
const char* kDelta = "treeplace-scenario v1 1\nE 15\nE 22 0\n";

NetServerConfig net_config(std::size_t shards, std::string persist_dir) {
  NetServerConfig config;
  config.stream = serve_config();
  config.stream.cache_capacity = 256;
  config.max_conns = 256;
  config.shards = shards;
  config.persist_dir = std::move(persist_dir);
  return config;
}

/// One blocking loopback conversation: connect, send, half-close, read to
/// EOF.
std::string converse(std::uint16_t port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  TREEPLACE_CHECK_MSG(fd >= 0, "socket: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  TREEPLACE_CHECK_MSG(
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "loopback connect failed: " << std::strerror(errno));
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent, payload.size() - sent,
                             MSG_NOSIGNAL);
    TREEPLACE_CHECK_MSG(n > 0, "client send failed: " << std::strerror(errno));
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string received;
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      received.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    TREEPLACE_CHECK_MSG(n == 0, "client recv failed: " << std::strerror(errno));
    break;
  }
  ::close(fd);
  return received;
}

/// The work= counter of result line `id`, or UINT64_MAX if absent.
std::uint64_t work_of(const std::string& results, std::size_t id) {
  const std::string prefix = "result id=" + std::to_string(id) + " ";
  std::istringstream lines(results);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t pos = line.find(" work=");
    if (pos == std::string::npos) return UINT64_MAX;
    return std::strtoull(line.c_str() + pos + 6, nullptr, 10);
  }
  return UINT64_MAX;
}

struct ServerHandle {
  NetServer server;
  std::uint16_t port = 0;
  std::thread thread;
  std::ostringstream summary_out;
  NetServerSummary summary;

  explicit ServerHandle(NetServerConfig config)
      : server(std::move(config)), port(server.listen_and_bind()) {
    thread = std::thread([this] { summary = server.run(summary_out); });
  }

  NetServerSummary stop() {
    server.shutdown();
    thread.join();
    return summary;
  }
};

/// Phase 2 helper: `conns` concurrent conversations, each checked against
/// the single-stream reference.
bool all_identical(std::uint16_t port, std::size_t conns,
                   const std::string& payload, const std::string& reference) {
  std::vector<std::string> received(conns);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (std::size_t i = 0; i < conns; ++i) {
    threads.emplace_back(
        [&, i] { received[i] = converse(port, payload); });
  }
  for (std::thread& t : threads) t.join();
  bool identical = true;
  for (const std::string& r : received) {
    std::istringstream lines(r);
    std::string line;
    std::string results;
    while (std::getline(lines, line)) {
      if (line.rfind("result ", 0) == 0) results += line + "\n";
    }
    identical = identical && strip_timings(results) == reference;
  }
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_args(argc, argv);
  bench::banner(
      "shard restart — persistent warm sessions across kills and restarts",
      "named clients snapshot their sessions at shard drain and resume "
      "warm after a server restart; the restored warm solve must report "
      "work bit-identical to the never-restarted one, and results must be "
      "bit-identical across shard counts");

  char persist_template[] = "/tmp/treeplace_shard_restart_XXXXXX";
  TREEPLACE_CHECK_MSG(::mkdtemp(persist_template) != nullptr,
                      "mkdtemp: " << std::strerror(errno));
  const std::string persist_dir = persist_template;

  const std::string tree = serialize_tree(make_tree());
  // The delta is sent twice: the second, identical warm solve reuses every
  // subtree table and must report strictly less work than the first — the
  // externally visible proof that the session state is doing its job.
  const std::string alice_payload =
      "treeplace-hello v1 name=alice\n" + tree + kDelta + kDelta;
  const std::string bob_publish = "treeplace-hello v1 name=bob\n" + tree;
  const std::string bob_resume =
      "treeplace-hello v1 name=bob\n" + tree + kDelta + kDelta;

  Stopwatch total_watch;

  // --- Phase 1: warm ratio across a restart -------------------------------
  ServerHandle first(net_config(2, persist_dir));
  const std::string alice_results = converse(first.port, alice_payload);
  converse(first.port, bob_publish);
  const NetServerSummary first_summary = first.stop();

  ServerHandle second(net_config(2, persist_dir));
  const std::string bob_results = converse(second.port, bob_resume);
  const NetServerSummary second_summary = second.stop();

  const std::uint64_t work_cold = work_of(alice_results, 1);
  const std::uint64_t work_warm = work_of(alice_results, 2);
  const std::uint64_t work_rewarm = work_of(alice_results, 3);
  const std::uint64_t work_restored = work_of(bob_results, 2);
  const std::uint64_t work_rerestored = work_of(bob_results, 3);
  // The restored session must track the live one solve for solve — both
  // the first post-restore delta and the repeat report identical work.
  const bool warm_match = work_warm != UINT64_MAX &&
                          work_warm == work_restored &&
                          work_rewarm == work_rerestored;
  // Warm reuse engaged: re-solving the identical scenario reuses every
  // subtree table, so the repeat does strictly less work.
  const bool reuse_engaged =
      work_rewarm != UINT64_MAX && work_rewarm < work_warm;
  const bool persisted = first_summary.sessions_saved >= 2 &&
                         second_summary.sessions_restored >= 1;

  // --- Phase 2: shard count invisible in results --------------------------
  const std::string churn_payload =
      tree + "treeplace-scenario v1 1\nE 2\nE 6 0\n" +
      "treeplace-scenario v1 1\nZ\nR 33 7\n" + kDelta;
  std::string reference;
  {
    std::istringstream in(churn_payload);
    std::ostringstream out;
    StreamServer stream_server(serve_config());
    stream_server.serve(in, out);
    std::istringstream lines(out.str());
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind("result ", 0) == 0) reference += line + "\n";
    }
    reference = strip_timings(reference);
  }
  constexpr std::size_t kConns = 64;
  bool sharded_identical[2] = {false, false};
  const std::size_t shard_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    ServerHandle server(net_config(shard_counts[i], ""));
    sharded_identical[i] =
        all_identical(server.port, kConns, churn_payload, reference);
    server.stop();
  }

  // --- Report -------------------------------------------------------------
  Table table({"case", "work_cold", "work_warm", "work_rewarm",
               "work_restored", "work_rerestored", "warm_match", "saved",
               "restored"});
  table.set_title("Warm-session work across a server restart");
  table.add_row({std::string("restart"),
                 static_cast<std::int64_t>(work_cold),
                 static_cast<std::int64_t>(work_warm),
                 static_cast<std::int64_t>(work_rewarm),
                 static_cast<std::int64_t>(work_restored),
                 static_cast<std::int64_t>(work_rerestored),
                 std::string(warm_match ? "yes" : "NO"),
                 static_cast<std::int64_t>(first_summary.sessions_saved),
                 static_cast<std::int64_t>(second_summary.sessions_restored)});

  Table gate({"case", "work_cold", "work_warm", "work_rewarm",
              "work_restored", "identical"});
  gate.set_title("shard_restart (deterministic columns)");
  gate.add_row({std::string("restart"), static_cast<std::int64_t>(work_cold),
                static_cast<std::int64_t>(work_warm),
                static_cast<std::int64_t>(work_rewarm),
                static_cast<std::int64_t>(work_restored),
                std::string(warm_match && reuse_engaged && persisted
                                ? "yes"
                                : "NO")});
  gate.add_row({std::string("shards1x64"), std::int64_t{0}, std::int64_t{0},
                std::int64_t{0}, std::int64_t{0},
                std::string(sharded_identical[0] ? "yes" : "NO")});
  gate.add_row({std::string("shards4x64"), std::int64_t{0}, std::int64_t{0},
                std::int64_t{0}, std::int64_t{0},
                std::string(sharded_identical[1] ? "yes" : "NO")});

  bench::emit(table, "shard_restart", total_watch.seconds());
  const std::string json_path = bench::out_path("BENCH_shard_restart.json");
  gate.save_json(json_path);
  std::cout << "\n(JSON written to " << json_path << ")\n";

  const bool ok = warm_match && reuse_engaged && persisted &&
                  sharded_identical[0] && sharded_identical[1];
  if (!ok) {
    std::cout << "FAIL: restored warm work diverged from the live session, "
                 "persistence did not engage, or sharded results diverged "
                 "from stream mode\n";
    return 1;
  }
  std::cout << "restored warm solve bit-identical to the live session; "
               "results identical across shard counts\n";
  return 0;
}
