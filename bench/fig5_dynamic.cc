// Figure 5 (Experiment 2): 20 consecutive update steps on fat trees.
//
// Left panel: cumulative number of reused servers per step, DP vs GR (each
// chained on its own previous placement).  Right panel: histogram of the
// per-step difference (reused-in-DP − reused-in-GR); the paper reports the
// average number of steps at which each value occurs.
#include "bench/bench_util.h"
#include "sim/experiment2.h"

using namespace treeplace;

int main() {
  bench::banner("Figure 5 — consecutive executions (fat trees)",
                "cumulative reuse per step + per-step DP−GR histogram");

  Experiment2Config config;
  config.num_trees = env_size_t("TREEPLACE_TREES", 200);
  config.tree.num_internal = 100;
  config.tree.shape = kFatShape;
  config.tree.client_probability = 0.5;
  config.tree.min_requests = 1;
  config.tree.max_requests = 6;
  config.capacity = 10;
  config.num_steps = env_size_t("TREEPLACE_STEPS", 20);
  config.create = 0.1;
  config.delete_cost = 0.01;
  config.seed = env_size_t("TREEPLACE_SEED", 43);

  Stopwatch watch;
  const Experiment2Result r = run_experiment2(config);

  Table left({"step", "cum_reused_DP", "cum_reused_GR", "step_reused_DP",
              "step_reused_GR", "servers"});
  left.set_title("Figure 5 (left): cumulative reused servers (" +
                 std::to_string(config.num_trees) + " trees)");
  for (std::size_t s = 0; s < r.num_steps; ++s) {
    left.add_row({static_cast<std::int64_t>(s + 1), r.cumulative_reused_dp[s],
                  r.cumulative_reused_gr[s], r.step_reused_dp[s],
                  r.step_reused_gr[s], r.step_servers[s]});
  }
  bench::emit(left, "fig5_dynamic_left", watch.seconds());

  Table right({"reused_DP_minus_GR", "occurrences", "mean_steps_per_tree"});
  right.set_title(
      "Figure 5 (right): histogram of per-step reuse difference");
  for (const auto& [value, count] : r.diff_histogram.bins()) {
    right.add_row({value, static_cast<std::int64_t>(count),
                   static_cast<double>(count) /
                       static_cast<double>(config.num_trees)});
  }
  bench::emit(right, "fig5_dynamic_right", watch.seconds());
  std::cout << "mean per-step difference: " << r.diff_histogram.mean()
            << " servers (positive = DP reuses more)\n";
  return 0;
}
