// Merge-kernel microbench: pairs/sec of the min-plus join by path and
// table size.
//
// Joins two synthetic tables (the shapes the DP engines produce: 2-D boxes
// at update-dp-like occupancies) through core/merge_kernel.h under every
// kernel variant — sparse vs dense path, SIMD on vs the scalar fallback —
// and reports visited pairs per second.  The dense+SIMD path is the
// tentpole claim: on large high-occupancy joins it must clear 2x the
// scalar-sparse baseline on hardware with AVX2/NEON.
//
// The CI-gated JSON holds only deterministic columns: pairs per join and a
// flow checksum that every variant must reproduce bit-identically (the
// kernel's tie-break contract).  Throughput columns stay warn-only in the
// CSV/stdout.  TREEPLACE_KERNEL_REPS overrides the per-cell repetitions.
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/merge_kernel.h"
#include "support/prng.h"

using namespace treeplace;

namespace {

struct Shape {
  std::string label;
  int side = 0;          ///< bounds of each 2-D operand: (side, side)
  double occupancy = 1.0;
};

struct Variant {
  std::string label;
  dp::KernelConfig cfg;
};

std::vector<RequestCount> random_table(const dp::Box& box, double occupancy,
                                       Xoshiro256& rng) {
  std::vector<RequestCount> flow(box.size(), dp::kInvalidFlow);
  for (RequestCount& f : flow) {
    if (rng.uniform(0, 999) < static_cast<std::uint64_t>(occupancy * 1000)) {
      f = rng.uniform(0, 50);
    }
  }
  return flow;
}

/// Order-sensitive digest over the joined flow table, so a tie-break
/// divergence between variants cannot cancel out.
std::uint64_t flow_checksum(std::span<const RequestCount> flow) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const RequestCount f : flow) {
    h ^= f + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_args(argc, argv);
  bench::banner(
      "merge kernel — min-plus join throughput by path and table size",
      "synthetic slot joins through core/merge_kernel.h; all variants must "
      "produce bit-identical flows, dense+SIMD must beat scalar-sparse on "
      "large joins");

  const std::size_t reps = env_size_t(
      "TREEPLACE_KERNEL_REPS",
      bench_scale() == BenchScale::kPaper ? 60 : 12);

  const std::vector<Shape> shapes = {
      {"small_16x16_full", 15, 1.0},
      {"medium_64x64_full", 63, 1.0},
      {"large_128x128_full", 127, 1.0},
      {"large_128x128_sparse30", 127, 0.3},
      // Mid occupancy is the sparse AVX2 gather kernel's target regime:
      // compacted entries dominate, yet packs are full enough that the
      // 4-wide predicate (cap cut + gathered strict-improvement test)
      // pays off over the scalar compacted loop.
      {"large_128x128_sparse45", 127, 0.45},
  };
  const std::vector<Variant> variants = {
      {"scalar_sparse", {false, dp::KernelConfig::Path::kSparse}},
      {"scalar_dense", {false, dp::KernelConfig::Path::kDense}},
      {"simd_sparse", {true, dp::KernelConfig::Path::kSparse}},
      {"simd_dense", {true, dp::KernelConfig::Path::kDense}},
  };

  Table table({"shape", "variant", "out_cells", "pairs/join", "reps",
               "seconds", "mpairs/sec", "vs_scalar_sparse", "checksum"});
  table.set_title("Min-plus join throughput (" + std::to_string(reps) +
                  " reps per cell)");
  Table gate({"shape", "variant", "out_cells", "pairs", "checksum",
              "identical"});
  gate.set_title("merge_kernel (deterministic columns)");

  Stopwatch total;
  bool all_identical = true;
  for (const Shape& shape : shapes) {
    Xoshiro256 rng(0x6a11 + static_cast<std::uint64_t>(shape.side));
    const dp::Box lbox({shape.side, shape.side});
    const dp::Box rbox({shape.side, shape.side});
    const dp::Box obox({2 * shape.side, 2 * shape.side});
    const std::vector<RequestCount> lflow =
        random_table(lbox, shape.occupancy, rng);
    const std::vector<RequestCount> rflow =
        random_table(rbox, shape.occupancy, rng);
    // A cap admitting most sums, so the kernel (not the cut) dominates.
    const dp::JoinInputs in{&lbox, lflow, &rbox, rflow, &obox, 80};

    dp::JoinScratch scratch;
    std::vector<RequestCount> flow(obox.size());
    std::vector<dp::Decision> dec(obox.size());
    std::uint64_t reference_checksum = 0;
    double scalar_sparse_rate = 0.0;
    for (const Variant& variant : variants) {
      // Warm the scratch and page the tables in before timing.
      dp::JoinStats stats =
          dp::join_slots(in, flow, dec, nullptr, scratch, nullptr,
                         variant.cfg);
      Stopwatch watch;
      for (std::size_t r = 0; r < reps; ++r) {
        stats = dp::join_slots(in, flow, dec, nullptr, scratch, nullptr,
                               variant.cfg);
      }
      const double seconds = watch.seconds();
      const std::uint64_t checksum = flow_checksum(flow);
      if (variant.label == "scalar_sparse") reference_checksum = checksum;
      const bool identical = checksum == reference_checksum;
      all_identical = all_identical && identical;

      const double pairs_per_sec =
          seconds > 0.0 ? static_cast<double>(stats.pairs) *
                              static_cast<double>(reps) / seconds
                        : 0.0;
      if (variant.label == "scalar_sparse") {
        scalar_sparse_rate = pairs_per_sec;
      }
      const double speedup =
          scalar_sparse_rate > 0.0 ? pairs_per_sec / scalar_sparse_rate : 0.0;
      table.add_row({shape.label, variant.label,
                     static_cast<std::int64_t>(obox.size()),
                     static_cast<std::int64_t>(stats.pairs),
                     static_cast<std::int64_t>(reps), seconds,
                     pairs_per_sec / 1e6, speedup,
                     std::to_string(checksum)});
      gate.add_row({shape.label, variant.label,
                    static_cast<std::int64_t>(obox.size()),
                    static_cast<std::int64_t>(stats.pairs),
                    std::to_string(checksum),
                    std::string(identical ? "yes" : "NO")});
    }
  }

  bench::emit(table, "merge_kernel", total.seconds());
  const std::string json_path = bench::out_path("BENCH_merge_kernel.json");
  gate.save_json(json_path);
  std::cout << "\n(JSON written to " << json_path << ")\n";
  if (!all_identical) {
    std::cout << "FAIL: kernel variants disagree on joined flows\n";
    return 1;
  }
  std::cout << "all kernel variants bit-identical\n";
  return 0;
}
