// Warm vs. cold re-solves by delta size: the incremental-solve acceptance
// harness.
//
// For each incremental engine (power-sym, update-dp) and each delta size
// (1 client, 1% of clients, 10% of clients touched per step), a chain of
// scenario steps is solved twice: cold (a fresh solve per step) and warm
// (through one persistent SolveSession).  Every warm solve is checked
// bit-identical to its cold twin — placements, costs, frontier — and the
// table reports the DP work-counter ratio (merge pairs for the power DP,
// inner-loop iterations for the MinCost DP) plus wall-clock speedup.  The
// work ratio is the hardware-independent signal: a single-client delta
// must recompute only the touched root path, so warm work collapses to a
// small fraction of cold work even on one core.
//
// The JSON written for the CI bench-diff gate contains only deterministic
// columns (work counters, node reuse counts, identity flags); timings stay
// in the CSV/stdout.  Knobs: TREEPLACE_WARM_STEPS overrides the steps per
// configuration, --out DIR / TREEPLACE_BENCH_DIR route file output.
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "solver/registry.h"
#include "solver/session.h"
#include "support/prng.h"
#include "tree/scenario_delta.h"

using namespace treeplace;

namespace {

struct Config {
  std::string algo;
  int num_internal = 0;
  bool single_mode = false;
  /// > 0: a wide star (one root, `star_fanout` internal arms, one client
  /// per arm) instead of a generated tree — the high-fanout shape where
  /// the balanced merge tree cuts a single-client redo from O(k) chain
  /// merges to O(log k) slots.
  int star_fanout = 0;
};

struct DeltaSize {
  std::string label;
  std::size_t clients_touched = 0;  // resolved against the actual tree
};

Tree make_bench_tree(const Config& config) {
  if (config.star_fanout > 0) {
    TreeBuilder builder;
    const NodeId root = builder.add_root();
    for (int i = 0; i < config.star_fanout; ++i) {
      const NodeId arm = builder.add_internal(root);
      builder.add_client(arm, /*requests=*/1 + (i % 4));
    }
    return std::move(builder).build();
  }
  TreeGenConfig gen;
  gen.num_internal = config.num_internal;
  gen.shape = TreeShape{2, 4};
  gen.client_probability = 0.8;
  gen.min_requests = 1;
  gen.max_requests = 5;
  Tree tree = generate_tree(gen, /*seed=*/4011, /*index=*/0);
  Xoshiro256 pre_rng = make_rng(4011, 0, RngStream::kPreExisting);
  assign_random_pre_existing(tree, config.num_internal / 4, pre_rng,
                             /*num_modes=*/config.single_mode ? 1 : 2);
  return tree;
}

Instance make_instance(const Config& config, const Tree& tree) {
  if (config.single_mode) {
    return Instance::single_mode(tree.topology_ptr(), tree.scenario(), 10,
                                 0.1, 0.01);
  }
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  return Instance{tree.topology_ptr(), tree.scenario(), modes, costs,
                  std::nullopt};
}

/// Empty when identical; otherwise names the first diverging field so a
/// baseline refresh (or a real warm-start bug) is debuggable from the
/// failure output alone.
std::string solution_divergence(const Solution& warm, const Solution& cold) {
  if (warm.feasible != cold.feasible) return "feasible flag";
  if (!(warm.placement == cold.placement)) return "selected placement";
  if (warm.frontier.size() != cold.frontier.size()) {
    return "frontier size " + std::to_string(warm.frontier.size()) + " vs " +
           std::to_string(cold.frontier.size());
  }
  for (std::size_t i = 0; i < cold.frontier.size(); ++i) {
    if (warm.frontier[i].cost != cold.frontier[i].cost ||
        warm.frontier[i].power != cold.frontier[i].power) {
      return "frontier[" + std::to_string(i) + "] values";
    }
    if (!(warm.frontier[i].placement == cold.frontier[i].placement)) {
      return "frontier[" + std::to_string(i) + "] placement";
    }
  }
  if (cold.feasible && (warm.breakdown.cost != cold.breakdown.cost ||
                        warm.power != cold.power)) {
    return "cost/power accounting";
  }
  return "";
}

struct ChainResult {
  std::uint64_t cold_work = 0;
  std::uint64_t warm_work = 0;
  std::uint64_t nodes_recomputed = 0;
  std::uint64_t nodes_reused = 0;
  std::uint64_t cells_skipped = 0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  bool identical = true;
  std::string divergence;  ///< first diverging step/field when !identical
};

/// Runs one delta chain: per step, touch `clients_touched` random clients,
/// then solve cold and warm and compare.
ChainResult run_chain(const Config& config, const DeltaSize& delta,
                      std::size_t steps) {
  Tree tree = make_bench_tree(config);
  const auto cold_solver = make_solver(config.algo);
  const auto warm_solver = make_solver(config.algo);
  SolveSession session(tree.topology_ptr());

  // Fill the session once so every measured step is a true warm re-solve
  // (the serving loop's tree record plays the same role).
  warm_solver->solve_incremental(make_instance(config, tree), {}, session);
  const SolveSession::Stats primed = session.stats();

  ChainResult r;
  Xoshiro256 rng = make_rng(4012, config.num_internal + config.star_fanout,
                            RngStream::kWorkloadUpdate);
  const auto& clients = tree.client_ids();
  for (std::size_t step = 0; step < steps; ++step) {
    std::vector<ScenarioDelta> deltas;
    deltas.reserve(delta.clients_touched);
    for (std::size_t k = 0; k < delta.clients_touched; ++k) {
      deltas.push_back(ScenarioDelta::set_requests(
          clients[rng.uniform(0, clients.size() - 1)], rng.uniform(1, 5)));
    }
    for (const ScenarioDelta& d : deltas) apply_delta(tree.scenario(), d);
    const Instance instance = make_instance(config, tree);

    Stopwatch cold_watch;
    const Solution cold = cold_solver->solve(instance);
    r.cold_seconds += cold_watch.seconds();

    Stopwatch warm_watch;
    const Solution warm =
        warm_solver->solve_incremental(instance, deltas, session);
    r.warm_seconds += warm_watch.seconds();

    r.cold_work += cold.stats.work;
    r.warm_work += warm.stats.work;
    if (r.identical) {
      const std::string divergence = solution_divergence(warm, cold);
      if (!divergence.empty()) {
        r.identical = false;
        r.divergence = "step " + std::to_string(step) + ": " + divergence;
      }
    }
  }
  const SolveSession::Stats stats = session.stats();
  r.nodes_recomputed = stats.nodes_recomputed - primed.nodes_recomputed;
  r.nodes_reused = stats.nodes_reused - primed.nodes_reused;
  r.cells_skipped = stats.cells_skipped - primed.cells_skipped;
  return r;
}

/// Emits one chain's rows: the full row into the human table, the
/// deterministic columns into the CI-gated JSON table (one place, so the
/// two halves of the baseline can never drift apart).
void add_result(Table& table, Table& gate, const std::string& algo,
                const std::string& label, std::size_t steps,
                const ChainResult& r) {
  const double ratio = r.cold_work > 0
                           ? static_cast<double>(r.warm_work) /
                                 static_cast<double>(r.cold_work)
                           : 0.0;
  const double speedup =
      r.warm_seconds > 0.0 ? r.cold_seconds / r.warm_seconds : 0.0;
  const std::string identical = r.identical ? "yes" : "NO";
  table.add_row({algo, label, static_cast<std::int64_t>(steps),
                 static_cast<std::int64_t>(r.cold_work),
                 static_cast<std::int64_t>(r.warm_work), ratio,
                 static_cast<std::int64_t>(r.nodes_recomputed),
                 static_cast<std::int64_t>(r.nodes_reused),
                 static_cast<std::int64_t>(r.cells_skipped), r.cold_seconds,
                 r.warm_seconds, speedup, identical});
  gate.add_row({algo, label, static_cast<std::int64_t>(steps),
                static_cast<std::int64_t>(r.cold_work),
                static_cast<std::int64_t>(r.warm_work),
                static_cast<std::int64_t>(r.nodes_recomputed),
                static_cast<std::int64_t>(r.nodes_reused),
                static_cast<std::int64_t>(r.cells_skipped), identical});
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_args(argc, argv);
  bench::banner(
      "warm start — incremental re-solve vs. cold solve by delta size",
      "persistent SolveSession chains; warm results must be bit-identical "
      "to cold solves, warm DP work must shrink with the delta size");

  const std::size_t steps = env_size_t("TREEPLACE_WARM_STEPS", 16);
  const std::vector<Config> configs = {
      {"power-sym", 40, false},
      {"update-dp", 60, true},
  };

  Table table({"solver", "instance", "steps", "cold_work", "warm_work",
               "work_ratio", "nodes_recomputed", "nodes_reused",
               "cells_skipped", "cold_s", "warm_s", "speedup", "identical"});
  table.set_title("Warm vs. cold re-solves (" + std::to_string(steps) +
                  " delta steps per row)");
  Table gate({"solver", "instance", "steps", "cold_work", "warm_work",
              "nodes_recomputed", "nodes_reused", "cells_skipped",
              "identical"});
  gate.set_title("warm_start (deterministic columns)");

  Stopwatch total;
  std::vector<std::string> failures;
  const auto run_row = [&](const Config& config, const DeltaSize& delta) {
    const ChainResult r = run_chain(config, delta, steps);
    if (!r.identical) {
      failures.push_back("row (" + config.algo + ", " + delta.label +
                         ") diverged at " + r.divergence);
    }
    add_result(table, gate, config.algo, delta.label, steps, r);
  };

  for (const Config& config : configs) {
    const std::size_t num_clients =
        make_bench_tree(config).client_ids().size();
    const std::vector<DeltaSize> sizes = {
        {"delta_1", 1},
        {"delta_1pct", std::max<std::size_t>(1, num_clients / 100)},
        {"delta_10pct", std::max<std::size_t>(1, num_clients / 10)},
    };
    for (const DeltaSize& delta : sizes) run_row(config, delta);
  }

  // Asymptotics: the single-client-delta work ratio falls as trees grow —
  // a delta dirties one root path, and the clean sibling subtrees it
  // skips are a growing share of the total DP work.  update-dp's near-
  // uniform per-node tables show the effect most cleanly.  The 480-node
  // row is the large-N regime the aggregation path serves (a 10^5-user
  // skew tree collapses to a few hundred aggregate clients).
  for (const int n : {30, 60, 120, 240, 480}) {
    const Config config{"update-dp", n, true};
    run_row(config, DeltaSize{"delta_1_N" + std::to_string(n), 1});
  }

  // High fanout: wide stars, where the balanced merge tree collapses a
  // single-arm redo from the old chain's O(k) suffix merges to O(log k)
  // slots — the gated evidence for the merge-tree refactor.
  for (const int fanout : {32, 96}) {
    const Config config{"power-sym", 0, false, fanout};
    run_row(config, DeltaSize{"star" + std::to_string(fanout) + "_delta_1",
                              1});
  }
  run_row(Config{"update-dp", 0, true, 96},
          DeltaSize{"star96_delta_1", 1});

  // Bursty batches: 8 arms of the 96-star dirty in ONE batch.  The
  // rolling changed-cell footprint (dp::RollingDiffBudget) keeps the
  // root-path joins lazy across the whole burst where a per-slot ratio
  // bail would fall back to full joins — the cells_skipped column pins
  // the spliced volume alongside the usual identity/work gates.
  run_row(Config{"power-sym", 0, false, 96}, DeltaSize{"star96_burst8", 8});
  run_row(Config{"update-dp", 0, true, 96}, DeltaSize{"star96_burst8", 8});

  bench::emit(table, "warm_start", total.seconds());
  const std::string json_path = bench::out_path("BENCH_warm_start.json");
  gate.save_json(json_path);
  std::cout << "\n(JSON written to " << json_path << ")\n";
  if (!failures.empty()) {
    std::cout << "FAIL: warm solves diverged from cold solves\n";
    for (const std::string& failure : failures) {
      std::cout << "  " << failure << "\n";
    }
    return 1;
  }
  std::cout << "all warm re-solves bit-identical to cold solves\n";
  return 0;
}
