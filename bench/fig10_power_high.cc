// Figure 10: Experiment 3 on high trees (2-4 children per node), bounds
// swept over [10, 35].
//
// Paper headline: on high trees the DP/GR gap widens — GR consumes on
// average more than 40% more power for bounds in [22, 27] and about 60%
// more in [23, 25].
#include "bench/power_fig_util.h"

using namespace treeplace;

int main() {
  bench::banner("Figure 10 — power minimization (high trees)",
                "Experiment 3 on trees with 2-4 children per node");

  Experiment3Config config;
  config.num_trees = env_size_t("TREEPLACE_TREES", 100);
  config.tree.num_internal = 50;
  config.tree.shape = kHighShape;
  config.tree.client_probability =
      env_double("TREEPLACE_CLIENT_PROB", 0.8);  // calibrated, see DESIGN.md
  config.tree.min_requests = 1;
  config.tree.max_requests = 5;
  config.num_pre_existing = 5;
  config.mode_capacities = {5, 10};
  config.static_power = 12.5;
  config.alpha = 3.0;
  config.cost_create = 0.1;
  config.cost_delete = 0.01;
  config.cost_changed = 0.001;
  const double step = env_double("TREEPLACE_BOUND_STEP", 1.0);
  config.cost_bounds = bench::double_range(10, 35, step);
  config.seed = env_size_t("TREEPLACE_SEED", 48);

  bench::run_power_figure("Figure 10", "fig10_power_high", config, 22, 27);
  return 0;
}
