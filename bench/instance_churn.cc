// Instance churn: what the Topology/Scenario split buys the experiment hot
// loops.
//
// The workload is experiment-style repeated solving: one fixed topology
// (paper scale, N=100 fat), per solve a fresh scenario (request redraw +
// random pre-existing set) handed to the update DP.  Three ways to build
// each per-solve Instance are compared:
//
//   rebuild        the seed design's allocation profile: every solve
//                  reconstructs the whole tree (per-node structures, post
//                  order, id maps) before solving — what `Instance`
//                  copying a vector-of-vectors Tree amounted to;
//   tree-copy      post-refactor naive use: copy the Tree value (shared
//                  topology + duplicated flat scenario arrays);
//   scenario-fork  the intended zero-copy path: one shared_ptr topology,
//                  per-solve Scenario fork.
//
// The bench counts heap allocations made while *constructing* instances
// (solver-internal allocations are identical across modes and excluded) and
// checks that all modes produce bit-identical solve results.  The headline
// numbers: scenario-fork performs no per-solve topology work at all, and
// its instance-construction allocations drop by an order of magnitude
// against rebuild.
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "solver/registry.h"
#include "support/prng.h"

namespace {

std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_counting{false};

}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  // operator new must return a unique non-null pointer even for size 0.
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

using namespace treeplace;

namespace {

enum class Mode { kRebuild, kTreeCopy, kScenarioFork };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kRebuild: return "rebuild";
    case Mode::kTreeCopy: return "tree-copy";
    case Mode::kScenarioFork: return "scenario-fork";
  }
  return "?";
}

/// Reconstructs the full tree from scratch — the per-solve structure work
/// the seed design paid when Instance copied the Tree.
Tree rebuild_tree(const Topology& topo, const Scenario& scen) {
  TreeBuilder builder;
  for (std::size_t i = 0; i < topo.num_nodes(); ++i) {
    const auto id = static_cast<NodeId>(i);
    const NodeId parent = topo.parent(id);
    if (topo.is_internal(id)) {
      const NodeId got =
          parent == kNoNode ? builder.add_root() : builder.add_internal(parent);
      if (scen.pre_existing(id)) {
        builder.set_pre_existing(got, scen.original_mode(id));
      }
    } else {
      builder.add_client(parent, scen.requests(id));
    }
  }
  return std::move(builder).build();
}

/// The i-th scenario of the sweep, forked off `base` deterministically so
/// every mode solves the identical instance sequence.
Scenario make_scenario(const Scenario& base, std::size_t i) {
  Scenario scen = base;
  Xoshiro256 workload_rng = make_rng(7100, i, RngStream::kWorkloadUpdate);
  redraw_requests(scen, 1, 6, workload_rng);
  Xoshiro256 pre_rng = make_rng(7100, i, RngStream::kPreExisting);
  assign_random_pre_existing(scen, 20, pre_rng);
  return scen;
}

struct ModeResult {
  std::uint64_t instance_allocs = 0;  ///< while constructing instances
  std::uint64_t solve_allocs = 0;     ///< inside the solver (table churn)
  double seconds = 0.0;               ///< full loop (construct + solve)
  double total_cost = 0.0;            ///< checksum across all solves
  int total_servers = 0;
};

ModeResult run_mode(Mode mode, const std::shared_ptr<const Topology>& topo,
                    const Scenario& base, const Solver& solver,
                    std::size_t solves) {
  ModeResult r;
  Stopwatch timer;
  for (std::size_t i = 0; i < solves; ++i) {
    Scenario scen = make_scenario(base, i);

    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    Instance instance = [&] {
      switch (mode) {
        case Mode::kRebuild:
          return Instance::single_mode(rebuild_tree(*topo, scen), 10, 0.1,
                                       0.01);
        case Mode::kTreeCopy: {
          const Tree tree(topo, scen);  // scenario copied into the tree...
          Tree copy = tree;             // ...and the tree copied per solve
          return Instance::single_mode(std::move(copy), 10, 0.1, 0.01);
        }
        case Mode::kScenarioFork:
        default:
          return Instance::single_mode(topo, std::move(scen), 10, 0.1, 0.01);
      }
    }();
    g_counting.store(false, std::memory_order_relaxed);
    r.instance_allocs += g_allocations.load(std::memory_order_relaxed);

    // Solver-internal churn: since the arena refactor the DP's flow and
    // decision tables come out of recycled chunks, so this stays a small
    // constant instead of scaling with the number of merge slots.
    g_allocations.store(0, std::memory_order_relaxed);
    g_counting.store(true, std::memory_order_relaxed);
    const Solution solution = solver.solve(instance);
    g_counting.store(false, std::memory_order_relaxed);
    r.solve_allocs += g_allocations.load(std::memory_order_relaxed);
    TREEPLACE_CHECK(solution.feasible);
    r.total_cost += solution.breakdown.cost;
    r.total_servers += solution.breakdown.servers;
  }
  r.seconds = timer.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_args(argc, argv);
  bench::banner(
      "instance churn — per-solve Instance construction strategies",
      "repeated experiment-style solves over one topology: seed-style "
      "rebuild vs tree copy vs shared-topology scenario fork");

  TreeGenConfig gen;
  gen.num_internal = 100;  // the paper's experiment scale, fat shape
  const Tree tree = generate_tree(gen, /*seed=*/7100, /*index=*/0);
  const std::shared_ptr<const Topology>& topo = tree.topology_ptr();
  const Scenario& base = tree.scenario();

  const std::size_t solves =
      env_size_t("TREEPLACE_CHURN_SOLVES",
                 bench_scale() == BenchScale::kPaper ? 400 : 120);
  const auto solver = make_solver("update-dp");

  Table table({"mode", "solves", "inst_allocs/solve", "solve_allocs/solve",
               "seconds", "solves/sec", "total_cost"});
  table.set_title("Instance churn (N=100 fat, update-dp, " +
                  std::to_string(solves) + " scenario solves)");

  Stopwatch total;
  std::vector<ModeResult> results;
  for (Mode mode :
       {Mode::kRebuild, Mode::kTreeCopy, Mode::kScenarioFork}) {
    const ModeResult r = run_mode(mode, topo, base, *solver, solves);
    table.add_row(
        {std::string(mode_name(mode)),
         static_cast<std::int64_t>(solves),
         static_cast<double>(r.instance_allocs) / static_cast<double>(solves),
         static_cast<double>(r.solve_allocs) / static_cast<double>(solves),
         r.seconds, static_cast<double>(solves) / r.seconds, r.total_cost});
    results.push_back(r);
  }

  // All modes must have solved the identical instance sequence.
  for (const ModeResult& r : results) {
    TREEPLACE_CHECK(r.total_cost == results.front().total_cost);
    TREEPLACE_CHECK(r.total_servers == results.front().total_servers);
  }

  bench::emit(table, "instance_churn", total.seconds());
  std::cout << "(identical results across modes: total cost "
            << results.front().total_cost << ", "
            << results.front().total_servers << " servers placed)\n";
  return 0;
}
