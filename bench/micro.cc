// google-benchmark microbenchmarks of the library's kernels: tree
// generation, closest-policy flow routing, the greedy, and all three DPs.
#include <benchmark/benchmark.h>

#include "core/dp_update.h"
#include "core/greedy.h"
#include "core/power_dp.h"
#include "core/power_dp_symmetric.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "model/placement.h"

namespace treeplace {
namespace {

Tree bench_tree(int n, std::size_t num_pre, int num_modes,
                RequestCount max_requests = 6) {
  TreeGenConfig config;
  config.num_internal = n;
  config.shape = kFatShape;
  config.max_requests = max_requests;
  Tree tree = generate_tree(config, 7, 0);
  Xoshiro256 rng = make_rng(7, 0, RngStream::kPreExisting);
  assign_random_pre_existing(tree, num_pre, rng, num_modes);
  return tree;
}

void BM_TreeGeneration(benchmark::State& state) {
  TreeGenConfig config;
  config.num_internal = static_cast<int>(state.range(0));
  std::uint64_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_tree(config, 7, index++));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TreeGeneration)->Arg(100)->Arg(1000)->Arg(10000)->Complexity();

void BM_ComputeFlows(benchmark::State& state) {
  const Tree tree = bench_tree(static_cast<int>(state.range(0)), 0, 1);
  Placement placement;
  int i = 0;
  for (NodeId id : tree.internal_ids()) {
    if (i++ % 3 == 0) placement.add(id, 0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_flows(tree, placement));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ComputeFlows)->Arg(100)->Arg(1000)->Arg(10000)->Complexity();

void BM_Greedy(benchmark::State& state) {
  const Tree tree = bench_tree(static_cast<int>(state.range(0)), 0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_greedy_min_count(tree, 10));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Greedy)->Arg(100)->Arg(1000)->Arg(10000)->Complexity();

void BM_CostDp(benchmark::State& state) {
  const Tree tree = bench_tree(static_cast<int>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)), 1);
  const MinCostConfig config{10, 0.1, 0.01};
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_min_cost_with_pre(tree, config));
  }
}
BENCHMARK(BM_CostDp)
    ->Args({50, 0})
    ->Args({50, 12})
    ->Args({100, 0})
    ->Args({100, 25})
    ->Args({200, 50});

void BM_PowerDpSymmetric(benchmark::State& state) {
  const Tree tree = bench_tree(static_cast<int>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)), 2, 5);
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_power_symmetric(tree, modes, costs));
  }
}
BENCHMARK(BM_PowerDpSymmetric)->Args({30, 0})->Args({30, 5})->Args({50, 5});

void BM_PowerDpExact(benchmark::State& state) {
  const Tree tree = bench_tree(static_cast<int>(state.range(0)),
                               static_cast<std::size_t>(state.range(1)), 2, 5);
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_power_exact(tree, modes, costs));
  }
}
BENCHMARK(BM_PowerDpExact)->Args({20, 3})->Args({30, 5});

void BM_EvaluateCost(benchmark::State& state) {
  Tree tree = bench_tree(200, 50, 1);
  const GreedyResult gr = solve_greedy_min_count(tree, 10);
  const CostModel costs = CostModel::simple(0.1, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_cost(tree, gr.placement, costs));
  }
}
BENCHMARK(BM_EvaluateCost);

}  // namespace
}  // namespace treeplace

BENCHMARK_MAIN();
