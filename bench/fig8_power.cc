// Figure 8 (Experiment 3): bi-criteria power minimization on fat trees.
//
// Paper setup: 100 trees with 50 nodes, 5 pre-existing servers, clients
// with 1-5 requests, modes W1=5 / W2=10, P_i = W1³/10 + W_i³,
// create=0.1 / delete=0.01 / changed=0.001; cost bound swept over [15, 45].
// Paper headline: GR consumes on average more than 30% more power than DP
// for cost bounds between 29 and 34.
#include "bench/power_fig_util.h"

using namespace treeplace;

int main() {
  bench::banner("Figure 8 — power minimization (fat trees, with pre)",
                "normalized inverse power vs cost bound, DP vs GR sweep");

  Experiment3Config config;
  config.num_trees = env_size_t("TREEPLACE_TREES", 100);
  config.tree.num_internal = 50;
  config.tree.shape = kFatShape;
  config.tree.client_probability =
      env_double("TREEPLACE_CLIENT_PROB", 0.8);  // calibrated, see DESIGN.md
  config.tree.min_requests = 1;
  config.tree.max_requests = 5;
  config.num_pre_existing = 5;
  config.mode_capacities = {5, 10};
  config.static_power = 12.5;  // W1^3 / 10
  config.alpha = 3.0;
  config.cost_create = 0.1;
  config.cost_delete = 0.01;
  config.cost_changed = 0.001;
  const double step = env_double("TREEPLACE_BOUND_STEP", 1.0);
  config.cost_bounds = bench::double_range(15, 45, step);
  config.seed = env_size_t("TREEPLACE_SEED", 44);

  bench::run_power_figure("Figure 8", "fig8_power", config, 29, 34);
  return 0;
}
