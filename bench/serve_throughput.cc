// Batch-serving throughput: scenarios/sec serial vs. pooled.
//
// The workload is the acceptance shape of the serving subsystem: a handful
// of N=30 topologies stay resident while a stream of independent scenario
// requests (request redraws + pre-existing redraws, the paper's
// Experiment 3 power setting) is solved by power-sym.  The same request
// set is solved (a) serially on one thread and (b) through the
// SolveDispatcher at increasing pool sizes; every pooled run must produce
// bit-identical placements to the serial pass, and the table reports
// scenarios/sec and the speedup.  A second table scales a single larger
// instance with Solver::Options::threads (sharded DP merges), using the
// registry's merge-pair work counter as the invariant check.
//
// Knobs: TREEPLACE_SERVE_TOPOLOGIES / TREEPLACE_SERVE_SCENARIOS override
// the request-set size, TREEPLACE_SERVE_MAX_THREADS the largest pool, and
// --out DIR / TREEPLACE_BENCH_DIR route the CSV/JSON output.
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "gen/workload.h"
#include "serve/dispatcher.h"
#include "solver/registry.h"
#include "support/prng.h"

using namespace treeplace;

namespace {

constexpr const char* kAlgo = "power-sym";

std::vector<Instance> make_requests() {
  const std::size_t topologies =
      env_size_t("TREEPLACE_SERVE_TOPOLOGIES", scaled<std::size_t>(4, 8));
  const std::size_t per_topology =
      env_size_t("TREEPLACE_SERVE_SCENARIOS", scaled<std::size_t>(24, 100));

  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(modes.count(), 0.1, 0.01,
                                             0.001, 0.001);
  std::vector<Instance> requests;
  requests.reserve(topologies * per_topology);
  for (std::size_t k = 0; k < topologies; ++k) {
    TreeGenConfig gen;
    gen.num_internal = 30;  // the N30 instance set
    gen.shape = TreeShape{2, 4};
    gen.client_probability = 0.8;
    gen.min_requests = 1;
    gen.max_requests = 5;
    const Tree tree = generate_tree(gen, /*seed=*/3011, k);
    const std::shared_ptr<const Topology>& topo = tree.topology_ptr();
    for (std::size_t s = 0; s < per_topology; ++s) {
      Scenario scen = tree.scenario();  // fork over the resident topology
      Xoshiro256 workload_rng =
          make_rng(derive_seed(3011, k), s, RngStream::kWorkloadUpdate);
      redraw_requests(scen, 1, 5, workload_rng);
      Xoshiro256 pre_rng =
          make_rng(derive_seed(3011, k), s, RngStream::kPreExisting);
      assign_random_pre_existing(scen, 6, pre_rng, modes.count());
      requests.push_back(
          Instance{topo, std::move(scen), modes, costs, std::nullopt});
    }
  }
  return requests;
}

struct RunResult {
  double seconds = 0.0;
  std::vector<Placement> placements;
};

/// Empty when identical; otherwise names the first diverging request, so
/// an identity failure pinpoints the offending row instead of a bare
/// yes/NO flag.
std::string placements_divergence(const std::vector<Placement>& run,
                                  const std::vector<Placement>& reference) {
  if (run.size() != reference.size()) {
    return "placement count " + std::to_string(run.size()) + " vs " +
           std::to_string(reference.size());
  }
  for (std::size_t i = 0; i < reference.size(); ++i) {
    if (!(run[i] == reference[i])) {
      return "request " + std::to_string(i) + " placement";
    }
  }
  return "";
}

RunResult run_serial(const std::vector<Instance>& requests) {
  const auto solver = make_solver(kAlgo);
  RunResult r;
  r.placements.reserve(requests.size());
  Stopwatch timer;
  for (const Instance& instance : requests) {
    Solution solution = solver->solve(instance);
    r.placements.push_back(std::move(solution.placement));
  }
  r.seconds = timer.seconds();
  return r;
}

RunResult run_pooled(const std::vector<Instance>& requests,
                     std::size_t threads) {
  serve::DispatcherConfig config;
  config.algos = {kAlgo};
  config.threads = threads;
  serve::SolveDispatcher dispatcher(config);
  std::vector<std::future<serve::ServeResult>> futures;
  futures.reserve(requests.size());
  RunResult r;
  r.placements.reserve(requests.size());
  Stopwatch timer;
  for (const Instance& instance : requests) {
    futures.push_back(dispatcher.submit(instance));
  }
  for (auto& future : futures) {
    serve::ServeResult result = future.get();
    TREEPLACE_CHECK_MSG(result.ok, result.error);
    r.placements.push_back(std::move(result.solution.placement));
  }
  r.seconds = timer.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_args(argc, argv);
  bench::banner(
      "serve throughput — scenarios/sec serial vs. pooled dispatch",
      "N30 power-sym request set through the batch-serving dispatcher; "
      "pooled placements must be bit-identical to the serial pass");

  const std::vector<Instance> requests = make_requests();
  std::cout << requests.size() << " requests (" << kAlgo << ")\n\n";

  Table table({"mode", "threads", "seconds", "scen_per_s", "speedup",
               "identical"});
  table.set_title("Serve throughput (" + std::to_string(requests.size()) +
                  " scenario requests, solver " + kAlgo + ")");
  Stopwatch total;

  const RunResult serial = run_serial(requests);
  const double serial_rate =
      static_cast<double>(requests.size()) / serial.seconds;
  table.add_row({"serial", std::int64_t{1}, serial.seconds, serial_rate, 1.0,
                 "-"});

  std::vector<std::string> failures;
  const std::size_t max_threads =
      env_size_t("TREEPLACE_SERVE_MAX_THREADS", 8);
  for (std::size_t threads = 2; threads <= max_threads; threads *= 2) {
    const RunResult pooled = run_pooled(requests, threads);
    const std::string divergence =
        placements_divergence(pooled.placements, serial.placements);
    if (!divergence.empty()) {
      failures.push_back("row (pooled, threads=" + std::to_string(threads) +
                         ") diverged at " + divergence);
    }
    const double rate = static_cast<double>(requests.size()) / pooled.seconds;
    table.add_row({"pooled", static_cast<std::int64_t>(threads),
                   pooled.seconds, rate, serial.seconds / pooled.seconds,
                   std::string(divergence.empty() ? "yes" : "NO")});
  }

  bench::emit(table, "serve_throughput", total.seconds());

  // Solver-internal scaling: one larger instance, sharded DP merges.  The
  // merge-pair work counter must not change with the thread count (the
  // shards visit exactly the serial pair set).
  Table intra({"threads", "seconds", "merge_pairs", "identical"});
  intra.set_title("Single-instance power-sym, Solver::Options::threads");
  {
    TreeGenConfig gen;
    gen.num_internal = 60;
    gen.shape = TreeShape{2, 4};
    gen.client_probability = 0.8;
    gen.min_requests = 1;
    gen.max_requests = 5;
    Tree tree = generate_tree(gen, /*seed=*/3012, /*index=*/0);
    Xoshiro256 pre_rng = make_rng(3012, 0, RngStream::kPreExisting);
    assign_random_pre_existing(tree, 12, pre_rng, 2);
    const ModeSet modes({5, 10}, 12.5, 3.0);
    const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
    const Instance instance{std::move(tree), modes, costs, std::nullopt};

    Solution reference;
    for (std::size_t threads = 1; threads <= max_threads; threads *= 2) {
      const auto solver = make_solver(kAlgo);
      solver->set_options(Solver::Options{static_cast<int>(threads)});
      Stopwatch timer;
      const Solution solution = solver->solve(instance);
      const double seconds = timer.seconds();
      if (threads == 1) reference = solution;
      std::string divergence;
      if (!(solution.placement == reference.placement)) {
        divergence = "selected placement";
      } else if (solution.stats.work != reference.stats.work) {
        divergence = "merge-pair work counter " +
                     std::to_string(solution.stats.work) + " vs " +
                     std::to_string(reference.stats.work);
      } else if (solution.frontier.size() != reference.frontier.size()) {
        divergence = "frontier size";
      }
      if (!divergence.empty()) {
        failures.push_back("row (intra, threads=" + std::to_string(threads) +
                           ") diverged at " + divergence);
      }
      intra.add_row({static_cast<std::int64_t>(threads), seconds,
                     static_cast<std::int64_t>(solution.stats.work),
                     std::string(divergence.empty() ? "yes" : "NO")});
    }
  }
  intra.print(std::cout);

  const std::string json_path = bench::out_path("BENCH_serve_throughput.json");
  table.save_json(json_path);
  std::cout << "\n(JSON written to " << json_path << ")\n";
  if (!failures.empty()) {
    std::cout << "FAIL: pooled/sharded results diverged from serial\n";
    for (const std::string& failure : failures) {
      std::cout << "  " << failure << "\n";
    }
    return 1;
  }
  std::cout << "all pooled and sharded results bit-identical to serial\n";
  return 0;
}
