// Frozen-subtree contraction on a warm serving day: when a tick touches
// only a small hot region of a skew tree, the session solves a tree the
// size of the dirty closure, not N.
//
// The acceptance shape of the contraction work (src/tree/contract.h,
// solver/contracted.h): a Zipf-attached skew tree is primed once, then a
// stationary hot region — the clients under one internal subtree covering
// ~1% of the internal nodes — absorbs a few request edits per tick.  Two
// sessions ride the same day: one with SolveSession::Options::contract
// set, one plain.  Every tick must come back bit-identical (placement,
// cost, power), and the end-of-day work counters must match exactly —
// contraction changes *where* the merges run, never which merges run,
// so nodes_recomputed / merge_steps / cells_skipped are the same stream
// on both sessions (the sealed counters are the only extras).
//
// Because the engine counters are bit-identical by construction, the
// headline ">= 5x less warm work per tick" gate is *structural*: per tick
// the bench rebuilds the ancestor closure prepare() would build — the
// union of this tick's and the previous tick's touched parents, closed to
// the root — and compares the contracted internal count against N.  The
// closure is deterministic, so the summed sizes live in the gated JSON;
// wall-clock p50s and the measured speedup stay in the CSV.
//
// Hard gates (non-zero exit on failure): per-tick bit-identity, counter
// equality modulo the sealed counters, subtrees_sealed > 0 on every row,
// and the per-row structural shrink floor (5x on the 1%-hot row).
// Knobs: TREEPLACE_CONTRACT_INTERNAL / TREEPLACE_CONTRACT_USERS /
// TREEPLACE_CONTRACT_TICKS override the tree and day length, --out DIR /
// TREEPLACE_BENCH_DIR route file output.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/dp_cache.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "solver/registry.h"
#include "solver/session.h"
#include "support/prng.h"
#include "tree/aggregate.h"
#include "tree/contract.h"
#include "tree/scenario_delta.h"

using namespace treeplace;

namespace {

constexpr const char* kAlgo = "power-sym";

struct ContractConfig {
  std::string label;
  int num_internal = 0;
  std::size_t num_users = 0;
  std::size_t ticks = 0;
  /// Hot-subtree size target as a divisor of num_internal: the bench picks
  /// the internal node whose subtree holds ~num_internal / hot_divisor
  /// internal nodes and edits only clients hanging under it.
  std::size_t hot_divisor = 100;
  std::size_t deltas_per_tick = 3;
  /// Pre-existing replicas.  The symmetric DP's same/changed table
  /// dimensions are bounded by the pre population, so the large rows run
  /// pre-free (like day_serve's day rows) and a small row keeps sealed
  /// E-state in play.
  std::size_t num_pre_existing = 0;
  /// Structural shrink floor for this row: sum(N) / sum(contracted N)
  /// over the day must reach this factor.
  double min_shrink_x = 5.0;
};

struct ContractResult {
  std::size_t deltas = 0;
  std::uint64_t warm_work = 0;       ///< contracted session (== plain)
  std::uint64_t cells_skipped = 0;
  std::uint64_t subtrees_sealed = 0;
  std::uint64_t sealed_cells = 0;
  std::uint64_t contracted_internal = 0;  ///< sum of closure sizes
  std::uint64_t full_internal = 0;        ///< N * ticks
  double contracted_seconds = 0.0;
  double plain_seconds = 0.0;
  double p50_contracted_ms = 0.0;
  double p50_plain_ms = 0.0;
  bool identical = true;   ///< contracted tick == plain tick, every tick
  bool work_match = true;  ///< end-of-day counters equal mod sealed
  bool shrink_ok = true;   ///< structural ratio >= min_shrink_x
};

double percentile_ms(std::vector<double> seconds, double p) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(seconds.size() - 1) + 0.5);
  return seconds[std::min(idx, seconds.size() - 1)] * 1e3;
}

/// Same generous capacities as bench/day_serve.cc: they never enter the
/// DP table dimensions, so the hottest attachment point stays absorbable.
Instance make_instance(const std::shared_ptr<const Topology>& topology,
                       const Scenario& scenario) {
  const ModeSet modes({4000000, 8000000}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  return Instance{topology, scenario, modes, costs, std::nullopt};
}

/// The internal node whose subtree internal count lands closest to
/// `target` while holding at least `min_clients` clients (the root is
/// excluded — contracting nothing is not a benchmark).
NodeId pick_hot_root(const Topology& topo, std::size_t target,
                     std::size_t min_clients) {
  const std::size_t n = topo.num_internal();
  std::vector<std::size_t> sub_internal(n, 1);
  std::vector<std::size_t> sub_clients(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId id = topo.internal_ids()[i];
    for (NodeId c : topo.children(id)) {
      if (topo.is_client(c)) ++sub_clients[i];
    }
  }
  // internal_ids() is BFS order from the root, so a reverse sweep folds
  // every child into its parent before the parent is read.
  for (std::size_t i = n; i-- > 1;) {
    const NodeId id = topo.internal_ids()[i];
    const std::size_t pi = topo.internal_index(topo.parent(id));
    sub_internal[pi] += sub_internal[i];
    sub_clients[pi] += sub_clients[i];
  }
  NodeId best = kNoNode;
  std::size_t best_diff = std::numeric_limits<std::size_t>::max();
  for (std::size_t i = 1; i < n; ++i) {
    if (sub_clients[i] < min_clients) continue;
    const std::size_t diff = sub_internal[i] > target
                                 ? sub_internal[i] - target
                                 : target - sub_internal[i];
    if (diff < best_diff) {
      best_diff = diff;
      best = topo.internal_ids()[i];
    }
  }
  return best;
}

/// Every client hanging under `hot_root` (its own clients included).
std::vector<NodeId> collect_hot_clients(const Topology& topo,
                                        NodeId hot_root) {
  std::vector<NodeId> clients;
  std::vector<NodeId> stack{hot_root};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    for (NodeId c : topo.children(id)) {
      if (topo.is_client(c)) {
        clients.push_back(c);
      } else {
        stack.push_back(c);
      }
    }
  }
  return clients;
}

ContractResult run_config(const ContractConfig& config) {
  SkewTreeConfig gen;
  gen.num_internal = config.num_internal;
  gen.num_users = config.num_users;
  Tree tree = generate_skew_tree(gen, /*seed=*/9001, /*index=*/0);
  if (config.num_pre_existing > 0) {
    Xoshiro256 pre_rng = make_rng(9001, 0, RngStream::kPreExisting);
    assign_random_pre_existing(tree, config.num_pre_existing, pre_rng,
                               /*num_modes=*/2);
  }

  // The day runs on the *aggregated* tree, exactly like the serving tier
  // (bench/day_serve.cc): aggregation collapses the Zipf user fan-in to
  // one client per attachment point, contraction then collapses the cold
  // internal structure — the two reductions the million-user regime
  // composes.  The hot region and the per-tick edits live directly on
  // aggregate clients; aggregation exactness has its own gate in
  // day_serve and is not re-proven here.
  Aggregation aggregation(tree.topology_ptr());
  Scenario scenario = aggregation.aggregate(tree.scenario());
  const std::shared_ptr<const Topology>& topology = aggregation.aggregated();
  const Topology& topo = *topology;
  const std::size_t n = topo.num_internal();
  const std::size_t target =
      std::max<std::size_t>(2, n / config.hot_divisor);
  const NodeId hot_root =
      pick_hot_root(topo, target, config.deltas_per_tick * 2);
  ContractResult r;
  if (hot_root == kNoNode) {
    r.identical = false;  // no usable hot subtree — fail loudly
    return r;
  }
  const std::vector<NodeId> hot_clients =
      collect_hot_clients(topo, hot_root);

  const auto contracted_solver = make_solver(kAlgo);
  const auto plain_solver = make_solver(kAlgo);
  SolveSession::Options contract_options;
  contract_options.contract = true;
  contract_options.contract_min_internal = 32;
  contract_options.contract_min_shrink = 2;
  SolveSession contracted(topology, contract_options);
  SolveSession plain(topology, SolveSession::Options{});

  const Instance primed_instance = make_instance(topology, scenario);
  const Solution primed_c =
      contracted_solver->solve_incremental(primed_instance, {}, contracted);
  const Solution primed_p =
      plain_solver->solve_incremental(primed_instance, {}, plain);
  if (!primed_c.feasible || !primed_p.feasible) {
    r.identical = false;
    return r;
  }

  Xoshiro256 rng = make_rng(9001, 0, RngStream::kWorkloadUpdate);
  std::vector<NodeId> prev_touched;
  std::vector<double> contracted_ticks, plain_ticks;
  contracted_ticks.reserve(config.ticks);
  plain_ticks.reserve(config.ticks);
  for (std::size_t tick = 0; tick < config.ticks; ++tick) {
    std::vector<ScenarioDelta> deltas;
    deltas.reserve(config.deltas_per_tick);
    for (std::size_t k = 0; k < config.deltas_per_tick; ++k) {
      const NodeId client =
          hot_clients[rng.uniform(0, hot_clients.size() - 1)];
      deltas.push_back(ScenarioDelta::set_requests(
          client, static_cast<RequestCount>(rng.uniform(1, 5))));
    }
    for (const ScenarioDelta& d : deltas) apply_delta(scenario, d);
    r.deltas += deltas.size();

    // The structural measure: the ancestor closure prepare() builds from
    // this tick's touched parents union'd with the previous tick's (the
    // cache's last_touched hint), closed to the root.  Deterministic, so
    // it can be gated; the engine's own counters cannot distinguish the
    // contracted run by design.
    std::optional<std::vector<NodeId>> touched =
        dp::delta_touched_internal(topo, deltas);
    std::vector<NodeId> effective = *touched;
    effective.insert(effective.end(), prev_touched.begin(),
                     prev_touched.end());
    std::sort(effective.begin(), effective.end());
    effective.erase(std::unique(effective.begin(), effective.end()),
                    effective.end());
    const Contraction closure(topology,
                              Contraction::open_closure(topo, effective));
    r.contracted_internal += closure.contracted()->num_internal();
    r.full_internal += n;
    prev_touched = std::move(*touched);

    const Instance instance = make_instance(topology, scenario);
    Stopwatch c_watch;
    const Solution warm_c =
        contracted_solver->solve_incremental(instance, deltas, contracted);
    contracted_ticks.push_back(c_watch.seconds());
    Stopwatch p_watch;
    const Solution warm_p =
        plain_solver->solve_incremental(instance, deltas, plain);
    plain_ticks.push_back(p_watch.seconds());
    r.warm_work += warm_c.stats.work;

    if (warm_c.feasible != warm_p.feasible ||
        !(warm_c.placement == warm_p.placement) ||
        (warm_c.feasible &&
         (warm_c.breakdown.cost != warm_p.breakdown.cost ||
          warm_c.power != warm_p.power))) {
      r.identical = false;
    }
  }

  const SolveSession::Stats sc = contracted.stats();
  const SolveSession::Stats sp = plain.stats();
  r.work_match = sc.warm_solves == sp.warm_solves &&
                 sc.cold_solves == sp.cold_solves &&
                 sc.nodes_recomputed == sp.nodes_recomputed &&
                 sc.nodes_reused == sp.nodes_reused &&
                 sc.merge_steps == sp.merge_steps &&
                 sc.signatures_checked == sp.signatures_checked &&
                 sc.cells_skipped == sp.cells_skipped;
  r.cells_skipped = sc.cells_skipped;
  r.subtrees_sealed = sc.subtrees_sealed;
  r.sealed_cells = sc.sealed_cells_injected;
  for (double s : contracted_ticks) r.contracted_seconds += s;
  for (double s : plain_ticks) r.plain_seconds += s;
  r.p50_contracted_ms = percentile_ms(contracted_ticks, 0.50);
  r.p50_plain_ms = percentile_ms(plain_ticks, 0.50);
  const double shrink =
      r.contracted_internal > 0
          ? static_cast<double>(r.full_internal) /
                static_cast<double>(r.contracted_internal)
          : 0.0;
  r.shrink_ok = shrink >= config.min_shrink_x;
  return r;
}

void add_result(Table& table, Table& gate, const ContractConfig& config,
                const ContractResult& r) {
  const double shrink =
      r.contracted_internal > 0
          ? static_cast<double>(r.full_internal) /
                static_cast<double>(r.contracted_internal)
          : 0.0;
  const double speedup =
      r.contracted_seconds > 0.0 ? r.plain_seconds / r.contracted_seconds
                                 : 0.0;
  const std::string identical = r.identical ? "yes" : "NO";
  const std::string work_match = r.work_match ? "yes" : "NO";
  const std::string shrink_ok = r.shrink_ok ? "yes" : "NO";
  table.add_row({config.label,
                 static_cast<std::int64_t>(config.num_internal),
                 static_cast<std::int64_t>(config.num_users),
                 static_cast<std::int64_t>(config.ticks),
                 static_cast<std::int64_t>(r.deltas),
                 static_cast<std::int64_t>(r.warm_work),
                 static_cast<std::int64_t>(r.cells_skipped),
                 static_cast<std::int64_t>(r.subtrees_sealed),
                 static_cast<std::int64_t>(r.sealed_cells),
                 static_cast<std::int64_t>(r.contracted_internal),
                 static_cast<std::int64_t>(r.full_internal), shrink,
                 r.p50_contracted_ms, r.p50_plain_ms, speedup, identical,
                 work_match, shrink_ok});
  gate.add_row({config.label,
                static_cast<std::int64_t>(config.num_internal),
                static_cast<std::int64_t>(config.num_users),
                static_cast<std::int64_t>(config.ticks),
                static_cast<std::int64_t>(r.deltas),
                static_cast<std::int64_t>(r.warm_work),
                static_cast<std::int64_t>(r.cells_skipped),
                static_cast<std::int64_t>(r.subtrees_sealed),
                static_cast<std::int64_t>(r.sealed_cells),
                static_cast<std::int64_t>(r.contracted_internal),
                static_cast<std::int64_t>(r.full_internal), identical,
                work_match, shrink_ok});
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_args(argc, argv);
  bench::banner(
      "contraction — warm ticks on a tree the size of the dirty closure",
      "frozen-subtree contraction vs a plain twin session over a day of "
      "hot-region edits; gates: per-tick bit-identity, counter equality "
      "mod sealed, subtrees_sealed > 0, structural shrink >= 5x on the "
      "1%-hot row");

  const int internal = static_cast<int>(
      env_size_t("TREEPLACE_CONTRACT_INTERNAL", 400));
  const std::size_t users = env_size_t("TREEPLACE_CONTRACT_USERS", 8000);
  const std::size_t ticks = env_size_t(
      "TREEPLACE_CONTRACT_TICKS", scaled<std::size_t>(48, 192));
  const std::vector<ContractConfig> configs = {
      // The headline row: a 1%-of-internals hot subtree; the acceptance
      // floor — the dirty closure the warm solves run on must stay >= 5x
      // smaller than N across the whole day.
      {"hot1pct", internal, users, ticks, /*hot_divisor=*/100,
       /*deltas_per_tick=*/3, /*num_pre_existing=*/0,
       /*min_shrink_x=*/5.0},
      // A wider hot region: the closure grows, the floor relaxes — the
      // row pins how shrink degrades as the dirty set spreads.
      {"hot4pct", internal, users, ticks, /*hot_divisor=*/25,
       /*deltas_per_tick=*/3, /*num_pre_existing=*/0,
       /*min_shrink_x=*/2.0},
      // A small tree with pre-existing replicas: sealed subtrees carry
      // E-state, so the sealed-leaf signature path (client_mass 0,
      // original_mode kept) stays exercised by a gated bench row too.
      {"hot_pre_N96", 96, 2000, ticks, /*hot_divisor=*/33,
       /*deltas_per_tick=*/3, /*num_pre_existing=*/10,
       /*min_shrink_x=*/2.0},
  };

  Table table({"config", "internal", "users", "ticks", "deltas",
               "warm_work", "cells_skipped", "subtrees_sealed",
               "sealed_cells", "contracted_internal", "full_internal",
               "shrink_x", "p50_contracted_ms", "p50_plain_ms",
               "speedup_x", "identical", "work_match", "shrink_ok"});
  table.set_title("Contracted vs plain warm session over a hot-region day");
  Table gate({"config", "internal", "users", "ticks", "deltas", "warm_work",
              "cells_skipped", "subtrees_sealed", "sealed_cells",
              "contracted_internal", "full_internal", "identical",
              "work_match", "shrink_ok"});
  gate.set_title("contraction (deterministic columns)");

  Stopwatch total;
  std::vector<std::string> failures;
  for (const ContractConfig& config : configs) {
    const ContractResult r = run_config(config);
    if (!r.identical) {
      failures.push_back("config " + config.label +
                         ": contracted solve diverged from the plain twin");
    }
    if (!r.work_match) {
      failures.push_back("config " + config.label +
                         ": work counters diverged between sessions");
    }
    if (r.subtrees_sealed == 0) {
      failures.push_back("config " + config.label +
                         ": contraction never fired (subtrees_sealed == 0)");
    }
    if (!r.shrink_ok) {
      failures.push_back(
          "config " + config.label + ": structural shrink " +
          std::to_string(r.full_internal) + "/" +
          std::to_string(r.contracted_internal) + " below " +
          std::to_string(config.min_shrink_x) + "x");
    }
    add_result(table, gate, config, r);
  }

  bench::emit(table, "contraction", total.seconds());
  const std::string json_path = bench::out_path("BENCH_contraction.json");
  gate.save_json(json_path);
  std::cout << "\n(JSON written to " << json_path << ")\n";
  if (!failures.empty()) {
    std::cout << "FAIL:\n";
    for (const std::string& failure : failures) {
      std::cout << "  " << failure << "\n";
    }
    return 1;
  }
  std::cout << "contracted warm solves bit-identical; dirty closure >= 5x "
               "smaller than N on the 1%-hot row\n";
  return 0;
}
