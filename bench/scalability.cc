// Scalability check for the paper's Section 5 runtime claims (on 2008
// hardware): cost DP — 500 nodes / 125 pre-existing in ~30 min; power DP
// without pre-existing — 300 nodes in ~1 h; power DP with pre-existing —
// 70 nodes / 10 pre-existing in ~1 h.  We measure the same configurations
// (scaled down by default; TREEPLACE_SCALE=paper runs the full sizes) on
// our bounded-table implementation.
#include "bench/bench_util.h"
#include "core/dp_update.h"
#include "core/power_dp.h"
#include "core/power_dp_symmetric.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"

using namespace treeplace;

namespace {

Tree make_tree(int n, std::size_t num_pre, int num_modes, std::uint64_t seed,
               RequestCount max_requests) {
  TreeGenConfig config;
  config.num_internal = n;
  config.shape = kFatShape;
  config.client_probability = 0.5;
  config.min_requests = 1;
  config.max_requests = max_requests;
  Tree tree = generate_tree(config, seed, 0);
  Xoshiro256 rng = make_rng(seed, 0, RngStream::kPreExisting);
  assign_random_pre_existing(tree, num_pre, rng, num_modes);
  return tree;
}

}  // namespace

int main() {
  bench::banner("Scalability — single-tree DP wall-clock vs instance size",
                "paper claims (2008 Xeon): cost DP 500/125 ≈ 30 min; power "
                "DP no-pre 300 ≈ 1 h; power DP 70/10 ≈ 1 h");
  Stopwatch total;
  Table table({"solver", "N", "E", "modes", "seconds", "merge_pairs"});
  table.set_title("Per-instance solve times (bounded-table implementation)");

  // --- Cost DP (MinCost-WithPre), E = N/4 like the paper's 500/125.
  for (int n : bench_scale() == BenchScale::kPaper
                   ? std::vector<int>{100, 200, 300, 500}
                   : std::vector<int>{100, 200, 300}) {
    Tree tree = make_tree(n, static_cast<std::size_t>(n / 4), 1, 51, 6);
    Stopwatch watch;
    const MinCostResult r =
        solve_min_cost_with_pre(tree, MinCostConfig{10, 0.1, 0.01});
    TREEPLACE_CHECK(r.feasible);
    table.add_row({std::string("cost DP"), static_cast<std::int64_t>(n),
                   static_cast<std::int64_t>(n / 4), std::int64_t{1},
                   watch.seconds(),
                   static_cast<std::int64_t>(r.merge_iterations)});
  }

  // --- Power DP without pre-existing servers (paper: 300 nodes).
  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (int n : bench_scale() == BenchScale::kPaper
                   ? std::vector<int>{50, 100, 200, 300}
                   : std::vector<int>{50, 100, 150}) {
    Tree tree = make_tree(n, 0, 2, 52, 5);
    Stopwatch watch;
    const PowerDPResult r = solve_power_symmetric(tree, modes, costs);
    TREEPLACE_CHECK(r.feasible);
    table.add_row({std::string("power DP (sym, no pre)"),
                   static_cast<std::int64_t>(n), std::int64_t{0},
                   std::int64_t{2}, watch.seconds(),
                   static_cast<std::int64_t>(r.stats.merge_pairs)});
  }

  // --- Power DP with pre-existing servers (paper: 70 nodes, 10 pre).
  for (int n : bench_scale() == BenchScale::kPaper
                   ? std::vector<int>{30, 50, 70}
                   : std::vector<int>{30, 50, 70}) {
    Tree tree = make_tree(n, 10, 2, 53, 5);
    Stopwatch watch;
    const PowerDPResult r = solve_power_symmetric(tree, modes, costs);
    TREEPLACE_CHECK(r.feasible);
    table.add_row({std::string("power DP (sym, with pre)"),
                   static_cast<std::int64_t>(n), std::int64_t{10},
                   std::int64_t{2}, watch.seconds(),
                   static_cast<std::int64_t>(r.stats.merge_pairs)});
  }

  // --- Exact (general-cost) power DP, the paper's O(N^{2M²+2M+1}) scheme.
  for (int n : std::vector<int>{20, 30, 40}) {
    Tree tree = make_tree(n, 5, 2, 54, 5);
    Stopwatch watch;
    const PowerDPResult r = solve_power_exact(tree, modes, costs);
    TREEPLACE_CHECK(r.feasible);
    table.add_row({std::string("power DP (exact, with pre)"),
                   static_cast<std::int64_t>(n), std::int64_t{5},
                   std::int64_t{2}, watch.seconds(),
                   static_cast<std::int64_t>(r.stats.merge_pairs)});
  }

  bench::emit(table, "scalability", total.seconds());
  return 0;
}
