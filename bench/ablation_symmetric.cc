// Ablation B: the symmetric-cost reduced-state power DP vs the exact
// general-cost DP — identical frontiers, orders-of-magnitude smaller
// tables.  This quantifies why Figures 8-11 run the symmetric solver.
#include <cmath>

#include "bench/bench_util.h"
#include "core/power_dp.h"
#include "core/power_dp_symmetric.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"

using namespace treeplace;

int main() {
  bench::banner("Ablation B — exact vs symmetric-cost power DP",
                "same frontier, reduced state space (M + M² -> M + 2 dims)");

  Stopwatch total;
  Table table({"N", "E", "exact_s", "sym_s", "speedup", "exact_cells",
               "sym_cells", "frontier_equal"});
  table.set_title("Per-tree solve comparison (modes {5,10}, paper costs)");

  const ModeSet modes({5, 10}, 12.5, 3.0);
  const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
  for (const auto& [n, e] : std::vector<std::pair<int, std::size_t>>{
           {15, 3}, {20, 5}, {30, 5}, {40, 5}, {40, 10}}) {
    TreeGenConfig config;
    config.num_internal = n;
    config.shape = kFatShape;
    config.max_requests = 5;
    Tree tree = generate_tree(config, 88, static_cast<std::uint64_t>(n));
    Xoshiro256 rng = make_rng(88, static_cast<std::uint64_t>(n),
                              RngStream::kPreExisting);
    assign_random_pre_existing(tree, e, rng, 2);

    Stopwatch exact_watch;
    const PowerDPResult exact = solve_power_exact(tree, modes, costs);
    const double exact_s = exact_watch.seconds();
    Stopwatch sym_watch;
    const PowerDPResult sym = solve_power_symmetric(tree, modes, costs);
    const double sym_s = sym_watch.seconds();

    bool equal = exact.frontier.size() == sym.frontier.size();
    for (std::size_t k = 0; equal && k < exact.frontier.size(); ++k) {
      equal = std::fabs(exact.frontier[k].cost - sym.frontier[k].cost) < 1e-9 &&
              std::fabs(exact.frontier[k].power - sym.frontier[k].power) <
                  1e-9;
    }
    table.add_row({static_cast<std::int64_t>(n), static_cast<std::int64_t>(e),
                   exact_s, sym_s, exact_s / std::max(1e-9, sym_s),
                   static_cast<std::int64_t>(exact.stats.table_cells),
                   static_cast<std::int64_t>(sym.stats.table_cells),
                   std::string(equal ? "yes" : "NO — BUG")});
  }
  bench::emit(table, "ablation_symmetric", total.seconds());
  return 0;
}
