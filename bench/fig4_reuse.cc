// Figure 4 (Experiment 1): impact of pre-existing servers on fat trees.
//
// Paper setup: 200 random trees, N = 100 internal nodes, 6-9 children per
// node, client w.p. 0.5 with 1-6 requests, W = 10; E swept from 0 to 100.
// Plotted: mean number of pre-existing servers reused by the update DP and
// by the greedy GR of [19].  Paper headline: DP reuses 4.13 more servers
// than GR on average (up to 15 more on a single tree).
#include "bench/bench_util.h"
#include "sim/experiment1.h"
#include "support/stats.h"

using namespace treeplace;

int main() {
  bench::banner("Figure 4 — reuse vs number of pre-existing servers (fat)",
                "mean reused servers, DP (Section 3) vs GR [19]");

  Experiment1Config config;
  config.num_trees = env_size_t("TREEPLACE_TREES", 200);
  config.tree.num_internal = 100;
  config.tree.shape = kFatShape;
  config.tree.client_probability = 0.5;
  config.tree.min_requests = 1;
  config.tree.max_requests = 6;
  config.capacity = 10;
  const std::size_t step = env_size_t("TREEPLACE_E_STEP",
                                      5);
  config.pre_existing_counts = bench::size_range(0, 100, step);
  config.create = 0.1;
  config.delete_cost = 0.01;
  config.seed = env_size_t("TREEPLACE_SEED", 42);

  Stopwatch watch;
  const auto rows = run_experiment1(config);

  Table table({"E", "reused_DP", "reused_GR", "DP_minus_GR", "max_advantage",
               "servers", "cost_DP", "cost_GR"});
  table.set_title("Figure 4 series (" + std::to_string(config.num_trees) +
                  " trees, N=100, W=10)");
  RunningStats advantage;
  for (const auto& r : rows) {
    table.add_row({static_cast<std::int64_t>(r.num_pre_existing), r.reused_dp,
                   r.reused_gr, r.reused_dp - r.reused_gr,
                   r.max_reuse_advantage, r.servers_dp, r.cost_dp, r.cost_gr});
    advantage.add(r.reused_dp - r.reused_gr);
  }
  bench::emit(table, "fig4_reuse", watch.seconds());
  std::cout << "mean reuse advantage of DP over GR across the sweep: "
            << advantage.mean() << " servers (paper: 4.13), max per-tree "
               "advantage observed: "
            << advantage.max() << "\n";
  return 0;
}
