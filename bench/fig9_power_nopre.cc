// Figure 9: Experiment 3 without pre-existing replicas (E = 0).
//
// Paper: "For low bound costs the two curves are close together because DP
// finds a solution if and only if GR finds a solution ... and there is no
// significant difference for other costs."
#include "bench/power_fig_util.h"

using namespace treeplace;

int main() {
  bench::banner("Figure 9 — power minimization without pre-existing replicas",
                "Experiment 3 with E = 0");

  Experiment3Config config;
  config.num_trees = env_size_t("TREEPLACE_TREES", 100);
  config.tree.num_internal = 50;
  config.tree.shape = kFatShape;
  config.tree.client_probability =
      env_double("TREEPLACE_CLIENT_PROB", 0.8);  // calibrated, see DESIGN.md
  config.tree.min_requests = 1;
  config.tree.max_requests = 5;
  config.num_pre_existing = 0;
  config.mode_capacities = {5, 10};
  config.static_power = 12.5;
  config.alpha = 3.0;
  config.cost_create = 0.1;
  config.cost_delete = 0.01;
  config.cost_changed = 0.001;
  const double step = env_double("TREEPLACE_BOUND_STEP", 1.0);
  config.cost_bounds = bench::double_range(15, 45, step);
  config.seed = env_size_t("TREEPLACE_SEED", 45);

  bench::run_power_figure("Figure 9", "fig9_power_nopre", config, 29, 34);
  return 0;
}
