// NP-completeness in practice: deciding the Theorem 2 gadget.
//
// The MinPower instance built from a 2-Partition instance of size n has
// n + 2 modes, and deciding it (via the proof's structural argument) costs
// 2^n — the exponential wall the theorem predicts for arbitrary mode
// counts.  This bench measures that wall, and contrasts it with the
// pseudo-polynomial direct subset-sum solver: the reduction proves
// hardness, it is not a good way to *solve* 2-Partition.
#include "bench/bench_util.h"
#include "core/np_reduction.h"
#include "support/prng.h"

using namespace treeplace;

namespace {

/// Random instance with all a_i < S/2 (the gadget premise); retries until
/// the draw satisfies it.
TwoPartitionInstance random_instance(int n, Xoshiro256& rng) {
  for (;;) {
    TwoPartitionInstance inst;
    for (int i = 0; i < n; ++i) inst.values.push_back(rng.uniform(1, 40));
    if (inst.sum() % 2 != 0) continue;
    bool ok = true;
    for (auto v : inst.values) ok = ok && (2 * v < inst.sum());
    if (ok) return inst;
  }
}

}  // namespace

int main() {
  bench::banner("NP gadget — deciding the Theorem 2 instance",
                "2^n structural enumeration vs pseudo-polynomial subset-sum");

  Stopwatch total;
  Table table({"n", "modes", "gadget_nodes", "gadget_seconds",
               "subset_sum_seconds", "agree"});
  table.set_title("Per-instance decision times (mean of 5 instances)");

  Xoshiro256 rng(20112011);
  const int max_n = static_cast<int>(env_size_t(
      "TREEPLACE_NP_MAX_N", scaled<std::size_t>(18, 22)));
  for (int n = 6; n <= max_n; n += 4) {
    double gadget_seconds = 0;
    double direct_seconds = 0;
    bool agree = true;
    int modes = 0;
    std::size_t nodes = 0;
    for (int rep = 0; rep < 5; ++rep) {
      const TwoPartitionInstance inst = random_instance(n, rng);
      const MinPowerGadget gadget = build_min_power_gadget(inst);
      modes = gadget.modes.count();
      nodes = gadget.tree.num_internal();

      Stopwatch g;
      const bool via_gadget = gadget_has_solution(gadget, inst);
      gadget_seconds += g.seconds();

      Stopwatch d;
      const bool direct = two_partition_brute_force(inst);
      direct_seconds += d.seconds();
      agree = agree && (via_gadget == direct);
    }
    table.add_row({static_cast<std::int64_t>(n),
                   static_cast<std::int64_t>(modes),
                   static_cast<std::int64_t>(nodes), gadget_seconds / 5,
                   direct_seconds / 5,
                   std::string(agree ? "yes" : "NO — BUG")});
  }
  bench::emit(table, "np_gadget", total.seconds());
  return 0;
}
