// The whole solver matrix in one binary: every registered strategy swept
// over a shared instance set.
//
// Two instance families exercise both problem classes:
//   * single-mode (M=1, W=10): the classic MinCost-WithPre setting,
//   * multi-mode (W1=5, W2=10, P_i = W1³/10 + W_i³): the paper's
//     Experiment 3 power setting.
// Each registered solver runs on every instance its capability flags accept
// (exhaustive oracles skip the large trees, single-mode-only solvers skip
// the power family); the table reports per-solver cost, power, server
// count and runtime, so a new registered solver is benchmarked against the
// whole field with zero extra code.
//
// Knobs: TREEPLACE_SCALE=paper adds a larger tree size,
// TREEPLACE_TREES_PER_SIZE overrides the per-size instance count, and
// --out DIR / TREEPLACE_BENCH_DIR routes the CSV/JSON output (default
// bench_results/; tools/bench_diff.py diffs the JSON against the committed
// baseline).
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "solver/registry.h"
#include "support/prng.h"

using namespace treeplace;

namespace {

struct NamedInstance {
  std::string label;
  Instance instance;
};

std::vector<NamedInstance> make_instances() {
  std::vector<std::size_t> sizes{12, 30};
  if (bench_scale() == BenchScale::kPaper) sizes.push_back(50);
  const std::size_t per_size = env_size_t("TREEPLACE_TREES_PER_SIZE", 2);

  const ModeSet power_modes({5, 10}, 12.5, 3.0);
  const CostModel power_costs =
      CostModel::uniform(power_modes.count(), 0.1, 0.01, 0.001, 0.001);

  std::vector<NamedInstance> out;
  for (const std::size_t n : sizes) {
    for (std::size_t t = 0; t < per_size; ++t) {
      TreeGenConfig gen;
      gen.num_internal = static_cast<int>(n);
      gen.shape = TreeShape{2, 4};
      gen.client_probability = 0.8;
      gen.min_requests = 1;
      gen.max_requests = 5;
      Tree tree = generate_tree(gen, /*seed=*/2011, t);
      Xoshiro256 rng = make_rng(2011, t, RngStream::kPreExisting);
      assign_random_pre_existing(tree, n / 5, rng, /*num_modes=*/2);

      Tree single = tree;
      // The single-mode family prices every pre-existing server at mode 0.
      for (NodeId id : single.pre_existing_nodes()) {
        single.set_pre_existing(id, 0);
      }
      out.push_back(NamedInstance{
          "cost/N" + std::to_string(n) + "/" + std::to_string(t),
          Instance::single_mode(std::move(single), 10, 0.1, 0.01)});
      out.push_back(NamedInstance{
          "power/N" + std::to_string(n) + "/" + std::to_string(t),
          Instance{std::move(tree), power_modes, power_costs, std::nullopt}});
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_args(argc, argv);
  bench::banner("solver matrix — every registered strategy, one instance set",
                "per-solver cost/power/runtime across the shared instances");

  const std::vector<NamedInstance> instances = make_instances();
  const SolverRegistry& registry = SolverRegistry::instance();
  std::cout << registry.size()
            << " registered solvers: " << registry.catalog() << "\n\n";

  Table table({"solver", "instance", "feasible", "cost", "power", "servers",
               "frontier", "seconds"});
  table.set_title("Solver matrix (" + std::to_string(registry.size()) +
                  " solvers x " + std::to_string(instances.size()) +
                  " instances)");

  Stopwatch total;
  std::size_t skipped = 0;
  for (const std::string& name : registry.names()) {
    const auto solver = registry.create(name);
    for (const NamedInstance& named : instances) {
      const Instance& instance = named.instance;
      if (!solver->info().accepts(instance.num_internal(),
                                  instance.modes.count())) {
        ++skipped;
        continue;
      }
      Stopwatch timer;
      const Solution solution = solver->solve(instance);
      const double seconds = timer.seconds();
      table.add_row({name, named.label,
                     std::string(solution.feasible ? "yes" : "no"),
                     solution.breakdown.cost, solution.power,
                     static_cast<std::int64_t>(solution.breakdown.servers),
                     static_cast<std::int64_t>(solution.frontier.size()),
                     seconds});
    }
  }

  bench::emit(table, "solver_matrix", total.seconds());
  // Machine-readable copy so future PRs can track the perf trajectory
  // (per-solver cost/power/seconds) without parsing the aligned table;
  // tools/bench_diff.py fails CI on result-value drift against the
  // committed bench_results/baseline_solver_matrix.json.
  const std::string json_path = bench::out_path("BENCH_solver_matrix.json");
  table.save_json(json_path);
  std::cout << "(JSON written to " << json_path << "; " << skipped
            << " solver/instance pairs skipped by capability flags)\n";
  return 0;
}
