// Connection-churn bench: the async TCP front-end under thousands of
// concurrent looped-back clients.
//
// For each concurrency level (1 / 64 / 1024 simultaneous connections) an
// in-process NetServer is stood up on an ephemeral loopback port and a
// single-threaded poll()-multiplexed client driver churns connections
// through connect -> publish tree + deltas -> half-close -> read results
// -> disconnect cycles, keeping the level's connection count saturated
// until the target total completes.  Reported: connections/sec,
// scenarios/sec, and the server's p99 submit-to-emit latency.
//
// The CI-gated JSON holds only deterministic columns: the connection and
// scenario counts, whether the server saturated the level (peak
// concurrent connections reached the target), and two correctness flags —
// every connection's bytes ordered and bit-identical (timings stripped)
// to what single-stream StreamServer emits for the same record sequence.
// Throughput and latency stay warn-only in the CSV/stdout.
//
// TREEPLACE_CHURN_CONNS overrides the per-level total connection count.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "serve/net_server.h"
#include "serve/stream_server.h"
#include "tree/io.h"
#include "tree/tree.h"

using namespace treeplace;
using namespace treeplace::serve;

namespace {

/// Internal nodes 0, 1, 2, 6; clients 3, 4, 5, 7 — the serve-test layout.
Tree make_tree() {
  TreeBuilder b;
  const NodeId root = b.add_root();       // 0
  const NodeId a = b.add_internal(root);  // 1
  const NodeId c = b.add_internal(root);  // 2
  b.add_client(a, 5);                     // 3
  b.add_client(a, 3);                     // 4
  b.add_client(c, 4);                     // 5
  const NodeId d = b.add_internal(c);     // 6
  b.add_client(d, 2);                     // 7
  return std::move(b).build();
}

StreamServerConfig serve_config() {
  StreamServerConfig config;
  config.dispatcher.algos = {"update-dp"};
  config.modes = ModeSet::single(10);
  config.costs = CostModel::simple(0.1, 0.01);
  config.project_original_modes = true;
  return config;
}

/// One connection's conversation: a tree record plus three delta records.
std::string make_stream() {
  std::ostringstream out;
  out << serialize_tree(make_tree());
  out << "treeplace-scenario v1 1\nE 2\nE 6 0\n";
  out << "treeplace-scenario v1 1\nZ\nR 3 7\n";
  out << "treeplace-scenario v1 1\nE 2\nX 2\n";
  return out.str();
}
constexpr std::size_t kRequestsPerConn = 4;

/// What StreamServer emits for the same records: result lines only,
/// timings stripped — the bit-identity reference.
std::string stream_reference(const std::string& stream) {
  std::istringstream in(stream);
  std::ostringstream out;
  StreamServer server(serve_config());
  server.serve(in, out);
  std::istringstream lines(out.str());
  std::string line;
  std::string results;
  while (std::getline(lines, line)) {
    if (line.rfind("result ", 0) == 0) results += line + "\n";
  }
  return strip_timings(results);
}

/// 1024 concurrent connections need ~2x that in fds (client + server end
/// share this process); lift the soft limit to the hard cap.
void raise_nofile_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    setrlimit(RLIMIT_NOFILE, &lim);
  }
}

// ---------------------------------------------------------------------------
// poll()-multiplexed client driver

struct Client {
  enum class State { kConnecting, kSending, kReading, kDone };
  int fd = -1;
  State state = State::kConnecting;
  std::size_t sent = 0;
  std::string received;
};

int start_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct ChurnOutcome {
  std::size_t completed = 0;
  std::size_t scenarios = 0;
  bool all_identical = true;
  double seconds = 0.0;
};

/// Keeps `concurrency` connections in flight until `total` have completed
/// their full cycle, verifying every connection's bytes against
/// `reference`.
ChurnOutcome churn(std::uint16_t port, std::size_t concurrency,
                   std::size_t total, const std::string& stream,
                   const std::string& reference) {
  ChurnOutcome outcome;
  std::vector<Client> clients;
  clients.reserve(concurrency);
  std::size_t started = 0;

  // Saturate the level before any client starts its conversation, so the
  // server genuinely holds `concurrency` simultaneous connections.
  for (; started < concurrency && started < total; ++started) {
    Client c;
    c.fd = start_connect(port);
    TREEPLACE_CHECK_MSG(c.fd >= 0, "loopback connect failed: "
                                       << std::strerror(errno));
    clients.push_back(c);
  }

  Stopwatch watch;
  std::vector<pollfd> pfds;
  while (outcome.completed < total) {
    pfds.clear();
    for (const Client& c : clients) {
      if (c.state == Client::State::kDone) continue;
      short events = 0;
      if (c.state == Client::State::kConnecting ||
          c.state == Client::State::kSending) {
        events = POLLOUT;
      } else {
        events = POLLIN;
      }
      pfds.push_back(pollfd{c.fd, events, 0});
    }
    TREEPLACE_CHECK_MSG(!pfds.empty(), "no live clients but "
                                           << total - outcome.completed
                                           << " cycles remain");
    const int ready = ::poll(pfds.data(), pfds.size(), 10'000);
    TREEPLACE_CHECK_MSG(ready > 0, "client poll stalled: "
                                       << std::strerror(errno));

    std::size_t pi = 0;
    for (Client& c : clients) {
      if (c.state == Client::State::kDone) continue;
      const pollfd& p = pfds[pi++];
      if (p.revents == 0) continue;
      if (c.state == Client::State::kConnecting) {
        c.state = Client::State::kSending;  // POLLOUT: connected (or error
                                            // surfaces on first send)
      }
      if (c.state == Client::State::kSending && (p.revents & POLLOUT)) {
        while (c.sent < stream.size()) {
          const ssize_t n = ::send(c.fd, stream.data() + c.sent,
                                   stream.size() - c.sent, MSG_NOSIGNAL);
          if (n > 0) {
            c.sent += static_cast<std::size_t>(n);
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            TREEPLACE_CHECK_MSG(false, "client send failed: "
                                           << std::strerror(errno));
          }
        }
        if (c.sent == stream.size()) {
          ::shutdown(c.fd, SHUT_WR);
          c.state = Client::State::kReading;
        }
      } else if (c.state == Client::State::kReading &&
                 (p.revents & (POLLIN | POLLHUP | POLLERR))) {
        char buf[16 * 1024];
        for (;;) {
          const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
          if (n > 0) {
            c.received.append(buf, static_cast<std::size_t>(n));
          } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            break;
          } else {
            // EOF (or reset after EOF): the cycle is complete.
            TREEPLACE_CHECK_MSG(n == 0, "client recv failed: "
                                            << std::strerror(errno));
            ::close(c.fd);
            outcome.all_identical =
                outcome.all_identical &&
                strip_timings(c.received) == reference;
            ++outcome.completed;
            outcome.scenarios += kRequestsPerConn;
            if (started < total) {
              // Churn: replace the finished connection immediately.
              c = Client{};
              c.fd = start_connect(port);
              TREEPLACE_CHECK_MSG(c.fd >= 0, "loopback connect failed: "
                                                 << std::strerror(errno));
              ++started;
            } else {
              c.state = Client::State::kDone;
              c.fd = -1;
            }
            break;
          }
        }
      }
    }
  }
  outcome.seconds = watch.seconds();
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_bench_args(argc, argv);
  bench::banner(
      "connection churn — async TCP front-end under concurrent clients",
      "poll()-multiplexed loopback clients cycling connect -> publish -> "
      "read -> disconnect against an in-process NetServer; every "
      "connection's bytes must be ordered and bit-identical to "
      "single-stream StreamServer");
  raise_nofile_limit();

  const std::size_t total_override = env_size_t("TREEPLACE_CHURN_CONNS", 0);
  const std::vector<std::size_t> levels = {1, 64, 1024};

  const std::string stream = make_stream();
  const std::string reference = stream_reference(stream);

  Table table({"concurrency", "connections", "scenarios", "conns/sec",
               "scenarios/sec", "p99_latency_s", "seconds", "identical"});
  table.set_title("Connection churn by concurrency level");
  Table gate({"concurrency", "connections", "scenarios", "saturated",
              "identical"});
  gate.set_title("connection_churn (deterministic columns)");

  Stopwatch total_watch;
  bool all_ok = true;
  for (const std::size_t concurrency : levels) {
    // Churn at least one full replacement generation past saturation.
    const std::size_t total =
        total_override ? std::max(total_override, concurrency)
                       : std::max<std::size_t>(2 * concurrency, 256);

    NetServerConfig config;
    config.stream = serve_config();
    // Every live connection publishes its own topology entry.
    config.stream.cache_capacity = 2 * concurrency + 8;
    config.max_conns = 2 * concurrency + 8;
    NetServer server(std::move(config));
    const std::uint16_t port = server.listen_and_bind();
    std::ostringstream summary_out;
    NetServerSummary summary;
    std::thread loop([&] { summary = server.run(summary_out); });

    const ChurnOutcome outcome =
        churn(port, concurrency, total, stream, reference);
    server.shutdown();
    loop.join();

    const bool saturated = summary.peak_connections >= concurrency;
    all_ok = all_ok && outcome.all_identical && saturated;
    const double conns_per_sec =
        outcome.seconds > 0 ? static_cast<double>(outcome.completed) /
                                  outcome.seconds
                            : 0.0;
    const double scen_per_sec =
        outcome.seconds > 0 ? static_cast<double>(outcome.scenarios) /
                                  outcome.seconds
                            : 0.0;
    table.add_row({static_cast<std::int64_t>(concurrency),
                   static_cast<std::int64_t>(outcome.completed),
                   static_cast<std::int64_t>(outcome.scenarios),
                   conns_per_sec, scen_per_sec, summary.p99_latency_seconds,
                   outcome.seconds,
                   std::string(outcome.all_identical ? "yes" : "NO")});
    gate.add_row({static_cast<std::int64_t>(concurrency),
                  static_cast<std::int64_t>(outcome.completed),
                  static_cast<std::int64_t>(outcome.scenarios),
                  std::string(saturated ? "yes" : "NO"),
                  std::string(outcome.all_identical ? "yes" : "NO")});
  }

  bench::emit(table, "connection_churn", total_watch.seconds());
  const std::string json_path =
      bench::out_path("BENCH_connection_churn.json");
  gate.save_json(json_path);
  std::cout << "\n(JSON written to " << json_path << ")\n";
  if (!all_ok) {
    std::cout << "FAIL: connection results diverged from stream mode or a "
                 "level failed to saturate\n";
    return 1;
  }
  std::cout << "all connections bit-identical to stream mode at every "
               "level\n";
  return 0;
}
