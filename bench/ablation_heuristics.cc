// Ablation C: the Section-6 "future work" heuristics against the optimal
// DPs — solution-quality gap and speedup.  This is the trade-off the paper
// anticipates: "with frequent updates or low-cost servers, we may prefer to
// resort to faster (but sub-optimal) update heuristics."
#include <cmath>

#include "bench/bench_util.h"
#include "core/dp_update.h"
#include "core/greedy.h"
#include "core/greedy_power.h"
#include "core/heuristics.h"
#include "core/power_dp_symmetric.h"
#include "gen/preexisting.h"
#include "gen/tree_gen.h"
#include "support/stats.h"

using namespace treeplace;

int main() {
  bench::banner("Ablation C — heuristics vs optimal DPs",
                "cost/power gap and speedup of the future-work heuristics");

  Stopwatch total;
  const std::size_t trees = env_size_t("TREEPLACE_TREES",
                                       scaled<std::size_t>(20, 100));

  // --- Reuse heuristics vs the cost DP (Experiment-1-style trees).
  {
    RunningStats gr_gap, tie_gap, ls_gap, dp_time, heuristic_time;
    const CostModel costs = CostModel::simple(0.1, 0.01);
    for (std::uint64_t t = 0; t < trees; ++t) {
      TreeGenConfig config;
      config.num_internal = 100;
      config.shape = kFatShape;
      Tree tree = generate_tree(config, 99, t);
      Xoshiro256 rng = make_rng(99, t, RngStream::kPreExisting);
      assign_random_pre_existing(tree, 30, rng);

      Stopwatch dp_watch;
      const MinCostResult dp =
          solve_min_cost_with_pre(tree, MinCostConfig{10, 0.1, 0.01});
      dp_time.add(dp_watch.seconds());
      TREEPLACE_CHECK(dp.feasible);

      Stopwatch h_watch;
      const GreedyResult gr = solve_greedy_min_count(tree, 10);
      const GreedyResult tie = solve_greedy_prefer_pre(tree, 10);
      GreedyResult ls = tie;
      improve_reuse(tree, 10, costs, ls.placement);
      heuristic_time.add(h_watch.seconds());

      const double opt = dp.breakdown.cost;
      gr_gap.add(evaluate_cost(tree, gr.placement, costs).cost - opt);
      tie_gap.add(evaluate_cost(tree, tie.placement, costs).cost - opt);
      ls_gap.add(evaluate_cost(tree, ls.placement, costs).cost - opt);
    }
    Table table({"method", "mean_cost_gap_vs_DP", "max_gap", "chain_seconds"});
    table.set_title("Reuse heuristics (N=100, E=30, " +
                    std::to_string(trees) + " trees)");
    table.add_row({std::string("GR (plain)"), gr_gap.mean(), gr_gap.max(),
                   heuristic_time.mean()});
    table.add_row({std::string("GR + pre-aware ties"), tie_gap.mean(),
                   tie_gap.max(), heuristic_time.mean()});
    table.add_row({std::string("GR + ties + local search"), ls_gap.mean(),
                   ls_gap.max(), heuristic_time.mean()});
    table.add_row({std::string("update DP (optimal)"), 0.0, 0.0,
                   dp_time.mean()});
    bench::emit(table, "ablation_heuristics_cost", total.seconds());
  }

  // --- Power local search vs the power DP (Experiment-3-style trees).
  {
    RunningStats gr_ratio, ls_ratio, dp_time, ls_time;
    const ModeSet modes({5, 10}, 12.5, 3.0);
    const CostModel costs = CostModel::uniform(2, 0.1, 0.01, 0.001, 0.001);
    const double bound = 33.0;
    for (std::uint64_t t = 0; t < trees; ++t) {
      TreeGenConfig config;
      config.num_internal = 50;
      config.shape = kFatShape;
      config.client_probability = 0.8;  // Figure 8 calibration
      config.max_requests = 5;
      Tree tree = generate_tree(config, 111, t);
      Xoshiro256 rng = make_rng(111, t, RngStream::kPreExisting);
      assign_random_pre_existing(tree, 5, rng, 2);

      Stopwatch dp_watch;
      const PowerDPResult dp = solve_power_symmetric(tree, modes, costs);
      dp_time.add(dp_watch.seconds());
      const PowerParetoPoint* opt = dp.best_within_cost(bound);
      if (opt == nullptr) continue;

      Stopwatch ls_watch;
      const GreedyPowerResult gr = solve_greedy_power(tree, modes, costs);
      const GreedyPowerCandidate* start = gr.best_within_cost(bound);
      if (start == nullptr) continue;
      Placement improved = start->placement;
      improve_power(tree, modes, costs, bound, improved);
      ls_time.add(ls_watch.seconds());

      gr_ratio.add(start->power / opt->power);
      ls_ratio.add(total_power(improved, modes) / opt->power);
    }
    Table table({"method", "mean_power_ratio_vs_DP", "max_ratio",
                 "mean_seconds"});
    table.set_title("Power heuristics (N=50, E=5, cost bound 33, " +
                    std::to_string(trees) + " trees)");
    table.add_row({std::string("GR capacity sweep"), gr_ratio.mean(),
                   gr_ratio.max(), ls_time.mean()});
    table.add_row({std::string("GR + power local search"), ls_ratio.mean(),
                   ls_ratio.max(), ls_time.mean()});
    table.add_row({std::string("power DP (optimal)"), 1.0, 1.0,
                   dp_time.mean()});
    bench::emit(table, "ablation_heuristics_power", total.seconds());
  }
  return 0;
}
