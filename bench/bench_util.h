// Shared helpers for the figure-harness binaries.
//
// Every bench prints (a) a banner with the effective configuration so
// bench_output.txt is self-describing, (b) the figure's series as an
// aligned table, and (c) a CSV copy under bench_results/ for plotting.
// Defaults are scaled down to finish in minutes; TREEPLACE_SCALE=paper
// restores the published sizes (see DESIGN.md).
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "support/env.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace treeplace::bench {

inline void banner(const std::string& name, const std::string& description) {
  std::cout << "\n==== " << name << " ====\n"
            << description << '\n'
            << "scale: "
            << (bench_scale() == BenchScale::kPaper ? "paper" : "quick")
            << " (set TREEPLACE_SCALE=paper for the published sizes), "
            << "threads: " << ThreadPool::default_thread_count() << "\n\n";
}

inline std::vector<double> double_range(double lo, double hi, double step) {
  std::vector<double> out;
  for (double v = lo; v <= hi + 1e-9; v += step) out.push_back(v);
  return out;
}

inline std::vector<std::size_t> size_range(std::size_t lo, std::size_t hi,
                                           std::size_t step) {
  std::vector<std::size_t> out;
  for (std::size_t v = lo; v <= hi; v += step) out.push_back(v);
  return out;
}

inline void emit(const Table& table, const std::string& csv_name,
                 double seconds) {
  table.print(std::cout);
  const std::string path = "bench_results/" + csv_name + ".csv";
  table.save_csv(path);
  std::cout << "\n(total " << seconds << " s; CSV written to " << path
            << ")\n";
}

}  // namespace treeplace::bench
