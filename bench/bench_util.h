// Shared helpers for the figure-harness binaries.
//
// Every bench prints (a) a banner with the effective configuration so
// bench_output.txt is self-describing, (b) the figure's series as an
// aligned table, and (c) a CSV/JSON copy under the bench output directory
// for plotting and trajectory diffs.  All file output is routed through
// out_path(): the directory defaults to bench_results/, is overridable via
// TREEPLACE_BENCH_DIR, and benches that take arguments accept `--out DIR`
// (parse_bench_args) — so CI artifacts and local runs never litter the
// repo root.  Defaults are scaled down to finish in minutes;
// TREEPLACE_SCALE=paper restores the published sizes (see DESIGN.md).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "support/env.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace treeplace::bench {

/// The directory all bench file output lands in.  Priority: --out DIR
/// (via parse_bench_args) > TREEPLACE_BENCH_DIR > "bench_results".
inline std::string& out_dir() {
  static std::string dir = env_string("TREEPLACE_BENCH_DIR", "bench_results");
  return dir;
}

inline std::string out_path(const std::string& filename) {
  return out_dir() + "/" + filename;
}

/// Handles the bench-common flags (currently `--out DIR`); exits with
/// usage on anything unrecognized so typos fail loudly.
inline void parse_bench_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_dir() = argv[++i];
    } else {
      std::cerr << "usage: " << argv[0] << " [--out DIR]\n"
                << "(TREEPLACE_BENCH_DIR overrides the default "
                   "bench_results/ output directory)\n";
      std::exit(2);
    }
  }
}

inline void banner(const std::string& name, const std::string& description) {
  std::cout << "\n==== " << name << " ====\n"
            << description << '\n'
            << "scale: "
            << (bench_scale() == BenchScale::kPaper ? "paper" : "quick")
            << " (set TREEPLACE_SCALE=paper for the published sizes), "
            << "threads: " << ThreadPool::default_thread_count() << "\n\n";
}

inline std::vector<double> double_range(double lo, double hi, double step) {
  std::vector<double> out;
  for (double v = lo; v <= hi + 1e-9; v += step) out.push_back(v);
  return out;
}

inline std::vector<std::size_t> size_range(std::size_t lo, std::size_t hi,
                                           std::size_t step) {
  std::vector<std::size_t> out;
  for (std::size_t v = lo; v <= hi; v += step) out.push_back(v);
  return out;
}

inline void emit(const Table& table, const std::string& csv_name,
                 double seconds) {
  table.print(std::cout);
  const std::string path = out_path(csv_name + ".csv");
  table.save_csv(path);
  std::cout << "\n(total " << seconds << " s; CSV written to " << path
            << ")\n";
}

}  // namespace treeplace::bench
